"""Tests for node failure/recovery and how the toolkit surfaces it."""

from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def make_deployment(n=3):
    tb = build_chain(n, spacing=60.0, seed=7,
                     propagation_kwargs=QUIET_PROPAGATION)
    return deploy_liteview(tb, warm_up=15.0)


def test_fail_silences_node():
    dep = make_deployment()
    tb = dep.testbed
    tb.node(2).fail()
    assert not tb.node(2).is_up
    sent_by_2 = sum(1 for r in tb.monitor.packets if r.sender == 2)
    tb.warm_up(10.0)
    assert sum(1 for r in tb.monitor.packets if r.sender == 2) == sent_by_2


def test_failed_node_vanishes_from_neighbor_tables():
    dep = make_deployment()
    tb = dep.testbed
    assert tb.node(1).neighbors.lookup(2) is not None
    tb.node(2).fail()
    tb.warm_up(30.0)
    assert tb.node(1).neighbors.lookup(2) is None


def test_ping_diagnoses_dead_node():
    dep = make_deployment()
    tb = dep.testbed
    tb.node(2).fail()
    dep.login("192.168.0.1")
    dep.run("ping 192.168.0.2 round=3")
    result = dep.interpreter.last_result
    assert result.received == 0
    assert result.lost == 3


def test_recovery_restores_service():
    dep = make_deployment()
    tb = dep.testbed
    tb.node(2).fail()
    tb.warm_up(10.0)
    tb.node(2).recover()
    tb.warm_up(10.0)  # beacons repopulate the tables
    assert tb.node(1).neighbors.lookup(2) is not None
    dep.login("192.168.0.1")
    dep.run("ping 192.168.0.2 round=2")
    assert dep.interpreter.last_result.received >= 1


def test_failure_clears_queue_and_logs_event():
    dep = make_deployment()
    tb = dep.testbed
    node = tb.node(2)
    from repro.mac.frame import BROADCAST, Frame
    node.mac.queue.put(Frame(src=2, dst=BROADCAST, payload=b"x"))
    node.fail()
    assert node.mac.queue_occupancy == 0
    codes = [e.code for e in node.events.recent()]
    assert "kernel.failed" in codes
    node.recover()
    assert "kernel.recovered" in [e.code for e in node.events.recent()]


def test_reboot_clears_stale_kernel_state():
    """A rebooted node must not keep its pre-crash neighbor table.

    Before the fix, recover() only re-enabled the radio, so a node that
    crashed and came back 'knew' neighbors it had never heard since —
    including ones that died or moved during its outage.
    """
    dep = make_deployment()
    tb = dep.testbed
    node = tb.node(2)
    assert node.neighbors.lookup(1) is not None
    node.neighbors.blacklist(3)
    node.fail()
    node.recover()
    # RAM is gone: entries, blacklist and the beacon sequence all reset.
    assert node.neighbors.entries() == []
    assert node.neighbors.blacklisted_ids() == []
    assert node.neighbors._seq == 0
    # Beacons repopulate the table from scratch.
    tb.warm_up(10.0)
    assert node.neighbors.lookup(1) is not None
    assert node.neighbors.lookup(3).enabled  # blacklist did not survive


def test_fail_and_recover_idempotent():
    dep = make_deployment()
    node = dep.testbed.node(2)
    node.fail()
    node.fail()
    assert dep.testbed.monitor.counter("kernel.failures") == 1
    node.recover()
    node.recover()
    assert dep.testbed.monitor.counter("kernel.recoveries") == 1
