"""Packet-lifecycle tracing: unit behavior plus the acceptance scenario.

The acceptance scenario is the ISSUE's bar: in a seeded multi-hop chain,
``Tracer.explain`` must reconstruct the full lifecycle of a dropped
packet — naming the hop where it died and the drop reason — and two
same-seed runs must export byte-identical traces.
"""

import json

import pytest

from repro.core.deploy import deploy_liteview
from repro.obs import Tracer, packet_trace_id, trace_to_jsonl
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

# -- unit: ids, emit, outcome, explain ----------------------------------------


def test_packet_trace_id_is_origin_port_seq():
    assert packet_trace_id(3, 10, 41) == "3:10:41"


def test_tracer_starts_disabled_and_empty():
    tracer = Tracer()
    assert not tracer.enabled
    assert len(tracer) == 0
    assert tracer.last_packet_id is None


def test_emit_indexes_by_packet_and_tracks_last():
    tracer = Tracer()
    tracer.enable()
    tracer.emit("stack.send", 1.0, node=1, packet="1:10:1", dest=4)
    tracer.emit("mac.tx", 1.5, node=1, packet="1:10:1")
    tracer.emit("radio.rx", 2.0, node=2, packet="2:12:7")
    tracer.emit("neighbors.beacon", 2.5, node=3)  # packetless event
    assert len(tracer) == 4
    assert [e.kind for e in tracer.lifecycle("1:10:1")] == [
        "stack.send", "mac.tx"]
    assert tracer.packet_ids() == ["1:10:1", "2:12:7"]
    assert tracer.last_packet_id == "2:12:7"  # packetless emit doesn't move it


def test_clear_keeps_enabled_flag():
    tracer = Tracer()
    tracer.enable()
    tracer.emit("x", 0.0, packet="a")
    tracer.clear()
    assert tracer.enabled
    assert len(tracer) == 0
    assert tracer.lifecycle("a") == []
    assert tracer.last_packet_id is None


def test_outcome_classification():
    tracer = Tracer()
    tracer.emit("stack.send", 0.0, packet="p")
    tracer.emit("route.deliver", 1.0, node=4, packet="p")
    assert tracer.outcome("p")[0] == "delivered"

    tracer.emit("stack.send", 0.0, packet="q")
    tracer.emit("route.drop", 1.0, node=2, packet="q", reason="no_route")
    verdict, decider = tracer.outcome("q")
    assert verdict == "dropped"
    assert decider.detail["reason"] == "no_route"

    tracer.emit("mac.tx", 0.0, packet="r")
    assert tracer.outcome("r")[0] == "in-flight"
    assert tracer.outcome("never-seen")[0] == "unknown"


def test_delivery_wins_over_later_drop():
    """A broadcast can be delivered at one node and TTL-die at another;
    the verdict the end user cares about is the delivery."""
    tracer = Tracer()
    tracer.emit("route.deliver", 1.0, node=4, packet="p")
    tracer.emit("route.drop", 2.0, node=5, packet="p", reason="ttl_expired")
    assert tracer.outcome("p")[0] == "delivered"


def test_explain_unknown_packet_is_a_message_not_an_error():
    assert "no trace for packet" in Tracer().explain("9:9:9")


def test_render_includes_time_node_and_detail():
    event_line = Tracer()
    event_line.emit("mac.tx", 1.25, node=3, packet="p", dst=4, attempts=1)
    [event] = event_line.events
    rendered = event.render()
    assert "node 3" in rendered
    assert "mac.tx" in rendered
    assert "dst=4" in rendered
    assert "attempts=1" in rendered


# -- acceptance: dropped packet in a seeded multi-hop chain -------------------


def run_ttl_drop_scenario():
    """4-node chain, deterministic propagation; node 1 sends to node 4
    with ttl=1 so the packet must die at node 2 with ttl_expired."""
    testbed = build_chain(4, spacing=60.0, seed=2,
                          propagation_kwargs=QUIET_PROPAGATION)
    deploy_liteview(testbed, warm_up=15.0)
    testbed.tracer.enable()
    src = testbed.node("192.168.0.1")
    dst = testbed.node("192.168.0.4")
    src.protocol_on(10).send(dst.id, 40, b"probe", ttl=1)
    testbed.run(until=testbed.env.now + 2.0)
    return testbed


@pytest.fixture(scope="module")
def ttl_drop_testbed():
    return run_ttl_drop_scenario()


def test_explain_reconstructs_dropped_packet_lifecycle(ttl_drop_testbed):
    tracer = ttl_drop_testbed.tracer
    drops = [e for e in tracer.events
             if e.kind == "route.drop"
             and e.detail.get("reason") == "ttl_expired"]
    assert drops, "the ttl=1 packet must have died of ttl_expired"
    packet_id = drops[0].packet

    story = tracer.explain(packet_id)
    header = story.splitlines()[0]
    # The header names the verdict, the hop, and the reason.
    assert "dropped at node 2" in header
    assert "ttl_expired" in header

    # The body walks the full lifecycle in order: send at node 1,
    # through the MAC, over the air, received and killed at node 2.
    kinds = [e.kind for e in tracer.lifecycle(packet_id)]
    for earlier, later in zip(
        ("stack.send", "mac.enqueue", "mac.tx", "radio.rx",
         "stack.rx", "route.drop"),
        ("mac.enqueue", "mac.tx", "radio.rx", "stack.rx", "route.drop"),
    ):
        assert kinds.index(earlier) < kinds.index(later), kinds

    send = next(e for e in tracer.lifecycle(packet_id)
                if e.kind == "stack.send")
    assert send.node == 1
    drop = drops[0]
    assert drop.node == 2


def test_outcome_of_ttl_drop_is_dropped(ttl_drop_testbed):
    tracer = ttl_drop_testbed.tracer
    drop = next(e for e in tracer.events
                if e.kind == "route.drop"
                and e.detail.get("reason") == "ttl_expired")
    verdict, decider = tracer.outcome(drop.packet)
    assert verdict == "dropped"
    assert decider.node == 2


def test_same_seed_runs_export_byte_identical_traces(ttl_drop_testbed):
    first = trace_to_jsonl(ttl_drop_testbed.tracer)
    second = trace_to_jsonl(run_ttl_drop_scenario().tracer)
    assert first == second
    assert first  # the scenario must actually trace something


def test_jsonl_lines_parse_and_carry_sim_time_only(ttl_drop_testbed):
    text = trace_to_jsonl(ttl_drop_testbed.tracer)
    lines = text.splitlines()
    assert text.endswith("\n")
    assert len(lines) == len(ttl_drop_testbed.tracer.events)
    for line in lines:
        record = json.loads(line)
        assert set(record) == {"time", "kind", "node", "packet", "detail"}


def test_tracing_does_not_perturb_the_simulation():
    """Enabling tracing must not consume RNG or change event order:
    the traced and untraced runs of one seed are the same run."""

    def monitor_fingerprint(traced):
        testbed = build_chain(4, spacing=60.0, seed=2,
                              propagation_kwargs=QUIET_PROPAGATION)
        deploy_liteview(testbed, warm_up=15.0)
        if traced:
            testbed.tracer.enable()
        src = testbed.node("192.168.0.1")
        src.protocol_on(10).send(testbed.node("192.168.0.4").id, 40,
                                 b"probe", ttl=8)
        testbed.run(until=testbed.env.now + 5.0)
        return (testbed.env.now, dict(testbed.monitor.counters),
                len(testbed.monitor.packets))

    assert monitor_fingerprint(traced=False) == monitor_fingerprint(
        traced=True)


def test_delivered_packet_traces_to_route_deliver():
    testbed = build_chain(3, spacing=40.0, seed=3,
                          propagation_kwargs=QUIET_PROPAGATION)
    deploy_liteview(testbed, warm_up=15.0)
    testbed.tracer.enable()
    src = testbed.node("192.168.0.1")
    dst = testbed.node("192.168.0.3")
    src.protocol_on(10).send(dst.id, 40, b"hello", ttl=8)
    testbed.run(until=testbed.env.now + 5.0)

    delivers = [e for e in testbed.tracer.events
                if e.kind == "route.deliver" and e.node == dst.id]
    assert delivers
    verdict, decider = testbed.tracer.outcome(delivers[0].packet)
    assert verdict == "delivered"
    assert decider.node == dst.id
    assert "delivered to node 3" in testbed.tracer.explain(
        delivers[0].packet).splitlines()[0]
