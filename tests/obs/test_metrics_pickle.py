"""Metrics and monitor state must survive a pickle round-trip.

Campaign workers return their observations across a process boundary;
these are the regression tests that every metrics object — and the
plain-data snapshots the runner actually ships — pickles at *every*
protocol (the ``__slots__`` classes need explicit state for protocols
0 and 1).
"""

import pickle

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.monitor import Monitor

ALL_PROTOCOLS = list(range(pickle.HIGHEST_PROTOCOL + 1))


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_metric_primitives_roundtrip(protocol):
    counter = Counter("c")
    counter.inc(41)
    gauge = Gauge("g")
    gauge.set(2.5)
    hist = Histogram("h")
    for v in (3.0, 1.0, 2.0):
        hist.observe(v)

    c2 = pickle.loads(pickle.dumps(counter, protocol))
    assert (c2.name, c2.value) == ("c", 41)
    c2.inc()  # still usable
    assert c2.value == 42

    g2 = pickle.loads(pickle.dumps(gauge, protocol))
    assert (g2.name, g2.value) == ("g", 2.5)

    h2 = pickle.loads(pickle.dumps(hist, protocol))
    assert h2.count == 3 and h2.percentile(50) == 2.0
    assert sorted(h2.values()) == [1.0, 2.0, 3.0]


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_registry_roundtrip(protocol):
    registry = MetricsRegistry()
    registry.counter("tx").inc(7)
    registry.gauge("depth").set(3.0)
    registry.histogram("rtt").observe(4.5)

    clone = pickle.loads(pickle.dumps(registry, protocol))
    assert clone.counters() == {"tx": 7}
    assert clone.gauges() == {"depth": 3.0}
    assert clone.histogram("rtt").count == 1
    assert clone.snapshot() == registry.snapshot()
    # Type guarding still works after the round-trip.
    with pytest.raises(TypeError):
        clone.gauge("tx")


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_monitor_roundtrip(protocol):
    from repro.sim.monitor import PacketRecord
    monitor = Monitor()
    monitor.count("sent", 3)
    monitor.record("rtt", time=1.0, value=4.5, hop=2)
    monitor.observe("queue", 1.0)
    monitor.log_packet(PacketRecord(time=0.5, sender=1, receiver=2,
                                    kind="data", port=10, size_bytes=32,
                                    delivered=True))

    clone = pickle.loads(pickle.dumps(monitor, protocol))
    assert clone.counter("sent") == 3
    assert [s.value for s in clone.series("rtt")] == [4.5]
    assert clone.series("rtt")[0].tag("hop") == 2
    assert clone.percentiles("queue")["count"] == 1
    assert clone.packet_digest() == monitor.packet_digest()
    # The memo caches still function: counting after unpickle works.
    clone.count("sent")
    assert clone.counter("sent") == 4


def test_monitor_snapshot_is_plain_and_picklable():
    monitor = Monitor()
    monitor.count("medium.transmissions", 9)
    monitor.record("lqi", time=2.0, value=101.0)
    snap = monitor.snapshot()
    assert snap["counters"] == {"medium.transmissions": 9}
    assert snap["series"]["lqi"] == [[2.0, 101.0]]
    assert snap["n_packets"] == 0
    assert snap["packet_sha256"] == monitor.packet_digest()
    assert snap["histograms"]["lqi"]["count"] == 1
    for protocol in ALL_PROTOCOLS:
        assert pickle.loads(pickle.dumps(snap, protocol)) == snap
    # JSON-ready too: no live objects anywhere.
    import json
    assert json.loads(json.dumps(snap)) == snap
