"""Trace export formats: JSONL files and Chrome trace_event JSON."""

import json

from repro.obs import (
    Tracer,
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)


def make_tracer():
    tracer = Tracer()
    tracer.emit("stack.send", 1.0, node=1, packet="1:10:1", dest=4)
    tracer.emit("radio.rx", 1.5, node=2, packet="1:10:1", rssi=-48)
    tracer.emit("stack.send", 2.0, node=2, packet="2:10:1", dest=4)
    tracer.emit("kernel.radio.power", 2.5, node=3)  # packetless
    return tracer


def test_empty_tracer_exports_empty_string_and_empty_event_list():
    tracer = Tracer()
    assert trace_to_jsonl(tracer) == ""
    assert trace_to_chrome(tracer) == {"traceEvents": [],
                                       "displayTimeUnit": "ms"}


def test_jsonl_round_trips_every_field():
    tracer = make_tracer()
    records = [json.loads(line)
               for line in trace_to_jsonl(tracer).splitlines()]
    assert len(records) == 4
    assert records[0] == {"time": 1.0, "kind": "stack.send", "node": 1,
                          "packet": "1:10:1", "detail": {"dest": 4}}
    assert records[3]["packet"] is None


def test_write_trace_jsonl_returns_count(tmp_path):
    tracer = make_tracer()
    path = tmp_path / "trace.jsonl"
    assert write_trace_jsonl(tracer, str(path)) == 4
    assert len(path.read_text().splitlines()) == 4


def test_chrome_trace_assigns_deterministic_tids():
    doc = trace_to_chrome(make_tracer())
    events = doc["traceEvents"]
    assert [e["name"] for e in events] == [
        "stack.send", "radio.rx", "stack.send", "kernel.radio.power"]
    # Packets get small tids in first-seen order; packetless events tid 0.
    assert [e["tid"] for e in events] == [1, 1, 2, 0]
    assert [e["pid"] for e in events] == [1, 2, 2, 3]
    # Sim seconds -> microseconds.
    assert events[1]["ts"] == 1.5e6
    # The packet id rides in args so the viewer shows it.
    assert events[0]["args"]["packet"] == "1:10:1"
    assert events[0]["args"]["dest"] == 4
    assert "packet" not in events[3]["args"]
    assert all(e["ph"] == "i" for e in events)


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    assert write_chrome_trace(make_tracer(), str(path)) == 4
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == 4
