"""Sim profiler: engine hook, attribution labels, report shape."""

from repro.obs import ProfileEntry, SimProfiler
from repro.sim import Environment


def ticker(env, period, rounds):
    for _ in range(rounds):
        yield env.timeout(period)


def test_environment_carries_no_profiler_by_default():
    env = Environment()
    assert env.profiler is None


def test_attach_measures_and_detach_stops():
    env = Environment()
    profiler = SimProfiler().attach(env)
    assert env.profiler is profiler

    env.process(ticker(env, 1.0, 3), name="tick")
    env.run()
    assert profiler.calls > 0
    assert profiler.total_s >= 0.0

    SimProfiler.detach(env)
    assert env.profiler is None
    calls_before = profiler.calls
    env.process(ticker(env, 1.0, 2), name="tock")
    env.run()
    assert profiler.calls == calls_before  # detached: nothing measured


def test_costs_attributed_to_process_names():
    env = Environment()
    profiler = SimProfiler().attach(env)
    env.process(ticker(env, 1.0, 4), name="mac-tx-1")
    env.run()
    labels = {entry.label for entry in profiler.entries()}
    assert "process:mac-tx-1" in labels


def test_bare_event_attributed_to_event_class():
    env = Environment()
    profiler = SimProfiler().attach(env)
    env.timeout(1.0)  # nobody waits on it
    env.run()
    labels = {entry.label for entry in profiler.entries()}
    assert "event:Timeout" in labels


def test_entries_sorted_hottest_first_and_mean_is_consistent():
    profiler = SimProfiler()
    profiler._stats["a"] = [2, 0.004, 0.003]
    profiler._stats["b"] = [1, 0.010, 0.010]
    first, second = profiler.entries()
    assert (first.label, second.label) == ("b", "a")
    assert second.mean_us == 2000.0
    assert ProfileEntry("z", 0, 0.0, 0.0).mean_us == 0.0


def test_report_lists_hotspots_and_truncates():
    env = Environment()
    profiler = SimProfiler().attach(env)
    assert "no events dispatched" in profiler.report()
    for i in range(4):
        env.process(ticker(env, 1.0, 2), name=f"p{i}")
    env.run()
    text = profiler.report(top=2)
    assert "dispatches" in text.splitlines()[0]
    assert "more labels" in text.splitlines()[-1]


def test_reset_zeroes_everything():
    env = Environment()
    profiler = SimProfiler().attach(env)
    env.process(ticker(env, 1.0, 2), name="x")
    env.run()
    profiler.reset()
    assert profiler.calls == 0
    assert profiler.total_s == 0.0
    assert profiler.entries() == []


def test_profiling_does_not_change_sim_results():
    """The profiler reads wall time but must not alter sim behavior."""

    def run(with_profiler):
        env = Environment()
        if with_profiler:
            SimProfiler().attach(env)
        ticks = []
        def recorder(env):
            for _ in range(5):
                yield env.timeout(0.25)
                ticks.append(env.now)
        env.process(recorder(env), name="rec")
        env.run()
        return ticks, env.now

    assert run(with_profiler=False) == run(with_profiler=True)
