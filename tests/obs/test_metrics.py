"""Metrics registry: counter/gauge/histogram semantics and the
monitor's delegation to the registry."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import metrics_to_json
from repro.sim.monitor import Monitor

# -- counters and gauges ------------------------------------------------------


def test_counter_increments_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_holds_last_value():
    gauge = Gauge("g")
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5


# -- histogram percentile math ------------------------------------------------


def test_empty_histogram_reports_none_everywhere():
    hist = Histogram("h")
    assert hist.count == 0
    assert hist.min is None
    assert hist.mean is None
    assert hist.max is None
    assert hist.percentile(50) is None
    summary = hist.summary()
    assert summary["count"] == 0
    assert summary["p99"] is None


def test_one_sample_histogram_is_that_sample_at_every_percentile():
    hist = Histogram("h")
    hist.observe(4.7)
    for p in (0, 1, 50, 90, 99, 100):
        assert hist.percentile(p) == 4.7
    assert hist.min == hist.mean == hist.max == 4.7


def test_nearest_rank_percentiles_on_known_set():
    """Nearest-rank on 1..100: pN is exactly N (no interpolation)."""
    hist = Histogram("h")
    for value in range(100, 0, -1):  # reverse order: exercises lazy sort
        hist.observe(value)
    assert hist.percentile(50) == 50
    assert hist.percentile(90) == 90
    assert hist.percentile(99) == 99
    assert hist.percentile(100) == 100
    assert hist.percentile(0) == 1
    assert hist.percentile(0.5) == 1  # ceil(0.5) rank -> first sample


def test_nearest_rank_small_set():
    hist = Histogram("h")
    for value in (10.0, 20.0, 30.0):
        hist.observe(value)
    assert hist.percentile(50) == 20.0   # ceil(1.5) = rank 2
    assert hist.percentile(90) == 30.0   # ceil(2.7) = rank 3
    assert hist.percentile(33.4) == 20.0


def test_percentile_range_validated():
    hist = Histogram("h")
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.percentile(-0.1)
    with pytest.raises(ValueError):
        hist.percentile(100.1)


def test_observe_after_percentile_resorts():
    hist = Histogram("h")
    hist.observe(10.0)
    assert hist.percentile(100) == 10.0
    hist.observe(5.0)  # arrives after the sort
    assert hist.percentile(0) == 5.0
    assert hist.percentile(100) == 10.0


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.get("a") is registry.counter("a")
    assert registry.get("missing") is None


def test_registry_rejects_type_morphing():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.histogram("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_snapshot_and_json_export_are_sorted_and_stable():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("depth").set(3.0)
    registry.histogram("rtt").observe(4.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["gauges"] == {"depth": 3.0}
    assert snap["histograms"]["rtt"]["count"] == 1
    # JSON export round-trips and is deterministic.
    assert json.loads(metrics_to_json(registry)) == json.loads(
        metrics_to_json(registry))


def test_render_mentions_every_section():
    registry = MetricsRegistry()
    assert registry.render() == "no metrics recorded"
    registry.counter("sent").inc()
    registry.gauge("depth").set(2)
    registry.histogram("rtt").observe(1.0)
    text = registry.render()
    assert "counters:" in text
    assert "gauges:" in text
    assert "histograms:" in text
    assert "sent" in text


# -- monitor delegation -------------------------------------------------------


def test_monitor_counters_live_in_registry():
    mon = Monitor()
    mon.count("frames", 3)
    assert mon.counter("frames") == 3
    assert mon.registry.counter("frames").value == 3
    assert mon.counters == {"frames": 3}


def test_monitor_counter_of_non_counter_metric_is_zero():
    mon = Monitor()
    mon.observe("rtt", 1.0)  # creates a histogram under this name
    assert mon.counter("rtt") == 0


def test_monitor_record_feeds_histogram():
    mon = Monitor()
    for value in (1.0, 2.0, 3.0, 4.0):
        mon.record("rtt", 0.0, value)
    assert mon.series_values("rtt") == [1.0, 2.0, 3.0, 4.0]
    assert mon.histogram("rtt").count == 4
    percentiles = mon.percentiles("rtt")
    assert percentiles["count"] == 4
    assert percentiles["p50"] == 2.0
    assert percentiles["max"] == 4.0


def test_monitor_observe_skips_series():
    mon = Monitor()
    mon.observe("occupancy", 2.0)
    assert mon.histogram("occupancy").count == 1
    assert mon.series("occupancy") == []


def test_monitor_reset_clears_registry():
    mon = Monitor()
    mon.count("x")
    mon.observe("h", 1.0)
    mon.reset()
    assert mon.counter("x") == 0
    assert len(mon.registry) == 0
