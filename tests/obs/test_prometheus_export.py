"""Prometheus text-exposition export of the metrics registry.

The exporter is the data source behind ``repro.serve``'s ``/metrics``
endpoint and a standalone batch artifact (textfile collection), so the
properties pinned here are the ones scrapers rely on: legal metric
names, escaped label values, the histogram-summary → gauge-per-
percentile mapping, and deterministic (sorted, byte-stable) output.
"""

import math

import pytest

from repro.obs.export import (
    escape_label_value,
    metrics_to_prometheus,
    prometheus_line,
    sanitize_metric_name,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry


# -- name sanitization --------------------------------------------------------

@pytest.mark.parametrize("raw, clean", [
    ("mac.sent_frames", "mac_sent_frames"),
    ("diag.finding.broken_link", "diag_finding_broken_link"),
    ("already_legal:name", "already_legal:name"),
    ("ping rtt (ms)", "ping_rtt__ms_"),
    ("9lives", "_9lives"),
    ("", "_empty_"),
])
def test_sanitize_metric_name(raw, clean):
    assert sanitize_metric_name(raw) == clean


def test_sanitized_names_are_legal_prometheus_names():
    import re
    legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    for raw in ("mac.tx", "8-ball", "Ünïcode", "a b\tc", "x"):
        assert legal.match(sanitize_metric_name(raw)), raw


# -- label escaping -----------------------------------------------------------

def test_label_escaping():
    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("back\\slash") == "back\\\\slash"
    assert escape_label_value("two\nlines") == "two\\nlines"


def test_prometheus_line_labels_sorted_and_escaped():
    line = prometheus_line("mac.tx", {"node": 7, "fleet": 'a"b'}, 3)
    assert line == 'mac_tx{fleet="a\\"b",node="7"} 3'


def test_prometheus_line_without_labels():
    assert prometheus_line("x.y", None, 1.5) == "x_y 1.5"


# -- full registry rendering --------------------------------------------------

def test_empty_registry_renders_empty_string():
    assert metrics_to_prometheus(MetricsRegistry()) == ""


def test_counters_and_gauges():
    registry = MetricsRegistry()
    registry.counter("mac.sent_frames").inc(4)
    registry.gauge("queue.depth").set(2.5)
    text = metrics_to_prometheus(registry)
    assert "# TYPE mac_sent_frames counter\nmac_sent_frames 4\n" in text
    assert "# TYPE queue_depth gauge\nqueue_depth 2.5\n" in text


def test_histogram_summary_maps_to_gauge_per_percentile():
    registry = MetricsRegistry()
    hist = registry.histogram("ping.rtt_ms")
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    text = metrics_to_prometheus(registry)
    assert "# TYPE ping_rtt_ms_count counter\nping_rtt_ms_count 4\n" in text
    for stat, expected in [("min", 1.0), ("max", 4.0), ("mean", 2.5),
                           ("p50", 2.0), ("p90", 4.0), ("p99", 4.0)]:
        assert (f"# TYPE ping_rtt_ms_{stat} gauge\n"
                f"ping_rtt_ms_{stat} {expected!r}\n") in text, stat


def test_empty_histogram_emits_only_count():
    registry = MetricsRegistry()
    registry.histogram("silent.series")
    text = metrics_to_prometheus(registry)
    assert "silent_series_count 0" in text
    assert "silent_series_p50" not in text
    assert "silent_series_min" not in text


def test_labels_applied_to_every_sample():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(1)
    registry.histogram("c").observe(2.0)
    text = metrics_to_prometheus(registry, labels={"fleet": "field",
                                                   "node": 3})
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        assert '{fleet="field",node="3"}' in line, line


def test_namespace_prefix():
    registry = MetricsRegistry()
    registry.counter("mac.tx").inc()
    text = metrics_to_prometheus(registry, namespace="repro")
    assert "repro_mac_tx 1" in text


def test_output_is_sorted_and_deterministic():
    def build():
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.middle"):
            registry.counter(name).inc()
        return registry

    first = metrics_to_prometheus(build())
    second = metrics_to_prometheus(build())
    assert first == second
    names = [line.split(" ")[0] for line in first.splitlines()
             if not line.startswith("#")]
    assert names == sorted(names)


def test_every_sample_line_parses(tmp_path):
    """The whole output round-trips through a minimal format parser."""
    registry = MetricsRegistry()
    registry.counter("mac.sent").inc(10)
    registry.gauge("depth").set(0.25)
    registry.histogram("rtt").observe(12.5)
    text = metrics_to_prometheus(registry, labels={"fleet": "x"})
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge")
            continue
        body, value = line.rsplit(" ", 1)
        assert not math.isnan(float(value))
        assert body.endswith('}') and '{fleet="x"' in body


def test_write_prometheus_counts_sample_lines(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.histogram("h").observe(1.0)
    path = tmp_path / "metrics.prom"
    # a (1) + h_count/min/mean/max/p50/p90/p99 (7) = 8 samples
    assert write_prometheus(registry, str(path)) == 8
    content = path.read_text()
    assert content == metrics_to_prometheus(registry)
    assert content.endswith("\n")


def test_write_prometheus_empty_registry(tmp_path):
    path = tmp_path / "empty.prom"
    assert write_prometheus(MetricsRegistry(), str(path)) == 0
    assert path.read_text() == ""
