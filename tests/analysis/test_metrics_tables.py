"""Tests for metric aggregation and table rendering."""

import math

from repro.analysis import (
    count_by_kind,
    packets_between,
    render_kv,
    render_series,
    render_table,
    summarize,
)
from repro.sim.monitor import Monitor, PacketRecord


def record(time, kind="data"):
    return PacketRecord(time=time, sender=1, receiver=2, kind=kind,
                        port=None, size_bytes=30, delivered=True)


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == 2.5
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.p50 == 2.5


def test_summarize_empty():
    s = summarize([])
    assert s.count == 0
    assert math.isnan(s.mean)


def test_summarize_render():
    assert "n=3" in summarize([1, 2, 3]).render("ms")


def test_packets_between_window_and_exclusion():
    mon = Monitor()
    mon.log_packet(record(1.0))
    mon.log_packet(record(2.0, kind="beacon"))
    mon.log_packet(record(3.0))
    mon.log_packet(record(9.0))
    window = packets_between(mon, 0.5, 5.0)
    assert [r.time for r in window] == [1.0, 3.0]


def test_count_by_kind():
    records = [record(1.0), record(2.0), record(3.0, kind="ping")]
    assert count_by_kind(records) == {"data": 2, "ping": 1}


def test_render_table_alignment():
    text = render_table(["hop", "delay"], [[1, 4.5], [10, 123.25]],
                        title="Figure 5")
    lines = text.splitlines()
    assert lines[0] == "Figure 5"
    assert "hop" in lines[1] and "delay" in lines[1]
    assert lines[-1].endswith("123.25")


def test_render_table_empty_rows():
    text = render_table(["a", "b"], [])
    assert "a" in text


def test_render_series():
    text = render_series("S", [(1, 2.0)], x_label="hop", y_label="ms")
    assert "hop" in text and "2.00" in text


def test_render_kv():
    text = render_kv("Footprints", {"ping flash": 2148, "ratio": 0.5})
    assert "ping flash" in text and "2148" in text and "0.50" in text
