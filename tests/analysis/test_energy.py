"""Unit tests for energy accounting."""

import pytest

from repro.analysis import energy_report, tx_current_ma
from repro.sim.monitor import PacketRecord
from repro.units import BYTE_AIRTIME


def record(sender=1, kind="data", size=100, time=0.0):
    return PacketRecord(time=time, sender=sender, receiver=2, kind=kind,
                        port=None, size_bytes=size, delivered=True)


def test_tx_current_datasheet_points():
    assert tx_current_ma(31) == 17.4
    assert tx_current_ma(3) == 8.5
    assert tx_current_ma(11) == 11.2


def test_tx_current_monotone():
    values = [tx_current_ma(l) for l in range(3, 32)]
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_tx_current_validation():
    with pytest.raises(ValueError):
        tx_current_ma(40)


def test_airtime_accounting():
    report = energy_report([record(size=100), record(size=50)])
    assert report.total_airtime == pytest.approx(150 * BYTE_AIRTIME)
    assert report.airtime_by_node[1] == report.total_airtime


def test_energy_scales_with_current():
    full = energy_report([record()], power_levels={1: 31})
    low = energy_report([record()], power_levels={1: 3})
    assert full.total_energy_mj > low.total_energy_mj
    assert full.total_energy_mj / low.total_energy_mj == pytest.approx(
        17.4 / 8.5
    )


def test_kind_fraction():
    report = energy_report([
        record(kind="beacon", size=60),
        record(kind="ping", size=30),
        record(kind="ping", size=30),
    ])
    assert report.kind_fraction("beacon") == pytest.approx(0.5)
    assert report.kind_fraction("ping") == pytest.approx(0.5)
    assert report.kind_fraction("absent") == 0.0


def test_empty_report():
    report = energy_report([])
    assert report.total_airtime == 0.0
    assert report.kind_fraction("x") == 0.0


def test_per_node_split():
    report = energy_report([record(sender=1), record(sender=2),
                            record(sender=2)])
    assert report.airtime_by_node[2] == pytest.approx(
        2 * report.airtime_by_node[1]
    )
