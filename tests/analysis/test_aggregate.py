"""Merge logic: exact mean/CI values for known per-run counters."""

import math

import pytest

from repro.analysis import CellAggregate, aggregate_cells, mean_ci

#: Two-sided 95% Student-t critical values (df -> t), the textbook table.
T95 = {1: 12.7062047362, 2: 4.3026527300, 3: 3.1824463053,
       4: 2.7764451052, 9: 2.2621571628}


def test_mean_ci_exact_three_samples():
    mean, half = mean_ci([1.0, 2.0, 3.0])
    assert mean == 2.0
    # s = 1, n = 3 -> half = t(0.975, 2) / sqrt(3)
    assert half == pytest.approx(T95[2] / math.sqrt(3), rel=1e-9)


def test_mean_ci_exact_known_counters():
    # Delivery counts from 5 replicates of one cell.
    values = [18, 20, 19, 17, 21]
    mean, half = mean_ci(values)
    assert mean == 19.0
    s = math.sqrt(sum((v - 19.0) ** 2 for v in values) / 4)
    assert half == pytest.approx(T95[4] * s / math.sqrt(5), rel=1e-9)


def test_mean_ci_confidence_level():
    mean, half95 = mean_ci([1.0, 2.0, 3.0], confidence=0.95)
    _, half99 = mean_ci([1.0, 2.0, 3.0], confidence=0.99)
    assert half99 > half95


def test_mean_ci_degenerate_cases():
    mean, half = mean_ci([4.0])
    assert mean == 4.0 and math.isnan(half)
    with pytest.raises(ValueError):
        mean_ci([])
    with pytest.raises(ValueError):
        mean_ci([1.0, 2.0], confidence=1.5)


def test_aggregate_cells_groups_by_params():
    rows = [
        ({"power": 10}, {"rssi": -70.0}),
        ({"power": 10}, {"rssi": -72.0}),
        ({"power": 25}, {"rssi": -55.0}),
        ({"power": 25}, {"rssi": -53.0}),
    ]
    out = aggregate_cells(rows)
    assert [(a.params, a.metric, a.n) for a in out] == [
        ({"power": 10}, "rssi", 2), ({"power": 25}, "rssi", 2),
    ]
    lo = out[0]
    assert lo.mean == -71.0
    assert lo.std == pytest.approx(math.sqrt(2), rel=1e-12)
    expected_half = T95[1] * math.sqrt(2) / math.sqrt(2)
    assert lo.half_width == pytest.approx(expected_half, rel=1e-9)
    assert lo.ci_low == pytest.approx(-71.0 - expected_half, rel=1e-9)
    assert lo.ci_high == pytest.approx(-71.0 + expected_half, rel=1e-9)


def test_aggregate_cells_metric_selection_and_non_numeric():
    rows = [
        ({"x": 1}, {"a": 1.0, "b": 2.0, "note": "skip", "flag": True}),
        ({"x": 1}, {"a": 3.0, "b": None}),
    ]
    everything = aggregate_cells(rows)
    # Strings, bools and Nones never aggregate; 'b' has one numeric sample.
    assert {(a.metric, a.n) for a in everything} == {("a", 2), ("b", 1)}
    only_a = aggregate_cells(rows, metrics=["a"])
    assert [a.metric for a in only_a] == ["a"]
    assert only_a[0].mean == 2.0


def test_aggregate_single_replicate_reports_nan_bounds():
    (agg,) = aggregate_cells([({"x": 1}, {"m": 5.0})])
    assert agg.n == 1 and agg.mean == 5.0 and agg.std == 0.0
    assert math.isnan(agg.ci_low) and math.isnan(agg.ci_high)
    assert "n=1" in agg.render()


def test_param_order_does_not_split_cells():
    rows = [
        ({"a": 1, "b": 2}, {"m": 1.0}),
        ({"b": 2, "a": 1}, {"m": 3.0}),
    ]
    (agg,) = aggregate_cells(rows)
    assert agg.n == 2 and agg.mean == 2.0


def test_render_with_interval():
    agg = CellAggregate(params={}, metric="m", n=3, mean=2.0, std=1.0,
                        ci_low=2.0 - 2.484, ci_high=2.0 + 2.484,
                        confidence=0.95)
    text = agg.render()
    assert "±" in text and "n=3" in text and "95%" in text
