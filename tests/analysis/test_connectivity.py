"""Tests for predicted-connectivity matrices and spacing planning."""

import numpy as np
import pytest

from repro.analysis.connectivity import (
    connected_pairs,
    max_clean_spacing,
    prr_matrix,
    received_power_matrix,
    snr_matrix,
)
from repro.kernel import Testbed
from repro.radio import power_level_to_dbm
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture
def chain():
    return build_chain(4, spacing=60.0, seed=3,
                       propagation_kwargs=QUIET_PROPAGATION)


def test_rx_matrix_shape_and_diagonal(chain):
    rx = received_power_matrix(chain)
    assert rx.shape == (4, 4)
    assert np.isnan(np.diag(rx)).all()


def test_rx_matrix_symmetric_without_shadowing(chain):
    rx = received_power_matrix(chain)
    off = ~np.eye(4, dtype=bool)
    assert np.allclose(rx[off], rx.T[off])


def test_rx_matrix_tracks_power_level(chain):
    high = received_power_matrix(chain, 31)
    low = received_power_matrix(chain, 10)
    off = ~np.eye(4, dtype=bool)
    expected = power_level_to_dbm(31) - power_level_to_dbm(10)
    assert np.allclose(high[off] - low[off], expected)


def test_rx_matrix_includes_directed_shadowing():
    tb = build_chain(3, spacing=60.0, seed=3,
                     propagation_kwargs=QUIET_PROPAGATION)
    tb.propagation.set_link_shadowing_db(1, 2, 20.0)
    rx = received_power_matrix(tb)
    assert rx[0, 1] == pytest.approx(rx[1, 0] - 20.0)


def test_prr_matrix_values(chain):
    prr = prr_matrix(chain, frame_bytes=50)
    # Adjacent 60 m links clean; 180 m links dead.
    assert prr[0, 1] > 0.95
    assert prr[0, 3] < 0.01
    off = ~np.isnan(prr)
    assert ((prr[off] >= 0) & (prr[off] <= 1)).all()


def test_prediction_matches_simulation(chain):
    """The predicted adjacent-link PRR agrees with observed beacon PRR."""
    chain.warm_up(120.0)
    predicted = prr_matrix(chain, frame_bytes=42)[0, 1]  # beacon-sized
    observed = chain.node(1).neighbors.lookup(2).prr_estimate
    assert observed == pytest.approx(predicted, abs=0.1)


def test_connected_pairs_lists_adjacent_links(chain):
    pairs = connected_pairs(chain, min_prr=0.9)
    assert (1, 2) in pairs and (2, 1) in pairs
    assert (1, 4) not in pairs


def test_snr_matrix_consistency(chain):
    assert np.nanmax(snr_matrix(chain) - received_power_matrix(chain)
                     ) == pytest.approx(98.0)


def test_max_clean_spacing_roundtrip():
    spacing = max_clean_spacing(0.95, frame_bytes=50)
    # Build a chain at that spacing: the adjacent link must meet ~0.95.
    tb = Testbed(seed=1, propagation_kwargs=QUIET_PROPAGATION)
    tb.add_node("a", (0.0, 0.0))
    tb.add_node("b", (spacing, 0.0))
    assert prr_matrix(tb, frame_bytes=50)[0, 1] == pytest.approx(
        0.95, abs=0.02)


def test_max_clean_spacing_shrinks_with_power():
    assert max_clean_spacing(0.95, power_level=10) < max_clean_spacing(
        0.95, power_level=31)


def test_max_clean_spacing_unreachable():
    with pytest.raises(ValueError):
        max_clean_spacing(0.9999999, power_level=3,
                          reference_loss_db=130.0)
