"""Unit tests for the port map."""

import pytest

from repro.errors import PortInUse
from repro.net import Packet, PortMap, WellKnownPorts


def make_packet(port=10):
    return Packet(port=port, origin=1, dest=2, payload=b"")


def test_subscribe_and_dispatch():
    pm = PortMap()
    got = []
    pm.subscribe(10, lambda p, a: got.append(p), name="ten")
    assert pm.dispatch(make_packet(10), None)
    assert len(got) == 1


def test_dispatch_unmatched_counts_and_returns_false():
    pm = PortMap()
    assert not pm.dispatch(make_packet(99), None)
    assert pm.unmatched == 1


def test_port_conflict_raises():
    pm = PortMap()
    pm.subscribe(10, lambda p, a: None, name="first")
    with pytest.raises(PortInUse, match="first"):
        pm.subscribe(10, lambda p, a: None, name="second")


def test_unsubscribe_releases_port():
    pm = PortMap()
    sub = pm.subscribe(10, lambda p, a: None)
    pm.unsubscribe(sub)
    assert pm.holder(10) is None
    pm.subscribe(10, lambda p, a: None)  # reusable now


def test_unsubscribe_is_idempotent():
    pm = PortMap()
    sub = pm.subscribe(10, lambda p, a: None)
    pm.unsubscribe(sub)
    pm.unsubscribe(sub)  # no error


def test_unsubscribe_does_not_clobber_replacement():
    pm = PortMap()
    old = pm.subscribe(10, lambda p, a: None)
    pm.unsubscribe(old)
    new = pm.subscribe(10, lambda p, a: None)
    pm.unsubscribe(old)  # stale handle must not remove the new holder
    assert pm.holder(10) is new


def test_ports_listing():
    pm = PortMap()
    pm.subscribe(12, lambda p, a: None)
    pm.subscribe(10, lambda p, a: None)
    assert pm.ports() == [10, 12]


def test_well_known_ports_are_distinct():
    values = [
        WellKnownPorts.CONTROL, WellKnownPorts.NEIGHBOR,
        WellKnownPorts.GEOGRAPHIC, WellKnownPorts.DSDV,
        WellKnownPorts.FLOODING, WellKnownPorts.PING,
        WellKnownPorts.TRACEROUTE,
    ]
    assert len(set(values)) == len(values)


def test_geographic_is_port_10():
    """The paper's example binds geographic forwarding to port 10."""
    assert WellKnownPorts.GEOGRAPHIC == 10
