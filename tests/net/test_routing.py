"""Tests for the routing protocols: geographic, flooding, DSDV."""

import pytest

from repro.kernel import Testbed
from repro.net import (
    DsdvRouting,
    FloodingProtocol,
    GeographicForwarding,
    WellKnownPorts,
)

QUIET = {"shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0}
SINK_PORT = 50


def chain_testbed(n_nodes=4, spacing=30.0, seed=3, protocol=None):
    tb = Testbed(seed=seed, propagation_kwargs=QUIET)
    for i in range(n_nodes):
        tb.add_node(f"192.168.0.{i + 1}", (i * spacing, 0.0))
    if protocol is not None:
        tb.install_protocol_everywhere(protocol)
    return tb


def sink(node, port=SINK_PORT):
    got = []
    node.stack.ports.subscribe(
        port, lambda p, arr: got.append(p), name="sink"
    )
    return got


class TestGeographic:
    def test_multi_hop_delivery(self):
        tb = chain_testbed(5, protocol=GeographicForwarding)
        tb.warm_up(10.0)
        got = sink(tb.node(5))
        tb.node(1).protocol_on(10).send(5, SINK_PORT, b"probe")
        tb.run(until=tb.env.now + 2.0)
        assert len(got) == 1
        assert got[0].origin == 1
        assert got[0].hop_count >= 2

    def test_padding_collects_per_hop_quality(self):
        tb = chain_testbed(4, protocol=GeographicForwarding)
        tb.warm_up(10.0)
        got = sink(tb.node(4))
        tb.node(1).protocol_on(10).send(4, SINK_PORT, b"p" * 16, padding=True)
        tb.run(until=tb.env.now + 2.0)
        [packet] = got
        assert len(packet.hop_quality) == packet.hop_count
        assert all(50 <= h.lqi <= 110 for h in packet.hop_quality)

    def test_loopback_send_to_self(self):
        tb = chain_testbed(2, protocol=GeographicForwarding)
        tb.warm_up(5.0)
        got = sink(tb.node(1))
        assert tb.node(1).protocol_on(10).send(1, SINK_PORT, b"me")
        assert got[0].payload == b"me"

    def test_unknown_destination_is_no_route(self):
        tb = chain_testbed(3, protocol=GeographicForwarding)
        tb.warm_up(10.0)
        before = tb.monitor.counter("routing.no_route")
        assert not tb.node(1).protocol_on(10).send(999, SINK_PORT, b"")
        assert tb.monitor.counter("routing.no_route") == before + 1

    def test_greedy_dead_end(self):
        """A destination beyond radio range with no closer neighbor."""
        tb = Testbed(seed=3, propagation_kwargs=QUIET)
        tb.add_node("a", (0.0, 0.0))
        tb.add_node("b", (30.0, 0.0))
        tb.add_node("c", (500.0, 0.0))  # isolated
        tb.install_protocol_everywhere(GeographicForwarding)
        tb.warm_up(10.0)
        got = sink(tb.node(3))
        tb.node(1).protocol_on(10).send(3, SINK_PORT, b"x")
        tb.run(until=tb.env.now + 2.0)
        assert got == []
        assert tb.monitor.counter("routing.no_route") >= 1

    def test_blacklisted_arrivals_ignored(self):
        tb = chain_testbed(2, protocol=GeographicForwarding)
        tb.warm_up(10.0)
        got = sink(tb.node(2))
        tb.node(2).neighbors.blacklist(1)
        tb.node(1).protocol_on(10).send(2, SINK_PORT, b"x")
        tb.run(until=tb.env.now + 2.0)
        assert got == []
        assert tb.monitor.counter("routing.blacklist_drops") >= 1

    def test_blacklist_changes_forwarding_path(self):
        """Blacklisting the direct next hop reroutes (or kills) traffic —
        'temporarily modifies the behavior of communication protocols'."""
        tb = chain_testbed(3, protocol=GeographicForwarding)
        tb.warm_up(10.0)
        got = sink(tb.node(3))
        # Node 1 normally reaches 3 directly (60 m) or via 2; blacklist
        # both candidate next hops at node 1 → no route from node 1.
        tb.node(1).neighbors.blacklist(2)
        tb.node(1).neighbors.blacklist(3)
        assert not tb.node(1).protocol_on(10).send(3, SINK_PORT, b"x")
        tb.run(until=tb.env.now + 2.0)
        assert got == []
        # Un-blacklist: delivery resumes.
        tb.node(1).neighbors.unblacklist(2)
        tb.node(1).neighbors.unblacklist(3)
        assert tb.node(1).protocol_on(10).send(3, SINK_PORT, b"y")
        tb.run(until=tb.env.now + 2.0)
        assert len(got) == 1


class TestFlooding:
    def test_delivery_without_position_knowledge(self):
        tb = chain_testbed(5, protocol=FloodingProtocol)
        tb.warm_up(5.0)
        got = sink(tb.node(5))
        tb.node(1).protocol_on(WellKnownPorts.FLOODING).send(
            5, SINK_PORT, b"flood"
        )
        tb.run(until=tb.env.now + 3.0)
        assert len(got) == 1  # dedup: delivered exactly once

    def test_duplicates_suppressed(self):
        tb = chain_testbed(4, protocol=FloodingProtocol)
        tb.warm_up(5.0)
        tb.node(1).protocol_on(WellKnownPorts.FLOODING).send(
            4, SINK_PORT, b"x"
        )
        tb.run(until=tb.env.now + 3.0)
        assert tb.monitor.counter("flood.duplicates") > 0

    def test_ttl_bounds_flood(self):
        tb = chain_testbed(6, protocol=FloodingProtocol)
        tb.warm_up(5.0)
        got = sink(tb.node(6))
        tb.node(1).protocol_on(WellKnownPorts.FLOODING).send(
            6, SINK_PORT, b"x", ttl=1
        )
        tb.run(until=tb.env.now + 3.0)
        assert got == []  # 1 hop cannot cover a 5-hop span

    def test_flood_overhead_exceeds_unicast(self):
        """Flooding is the expensive baseline: it must cost more frames
        than geographic forwarding on the same topology."""
        costs = {}
        for proto, port in ((GeographicForwarding, 10),
                            (FloodingProtocol, 12)):
            tb = chain_testbed(5, protocol=proto)
            tb.warm_up(10.0)
            sink(tb.node(5))
            before = tb.monitor.counter("medium.transmissions")
            tb.node(1).protocol_on(port).send(5, SINK_PORT, b"x")
            tb.run(until=tb.env.now + 3.0)
            costs[port] = tb.monitor.counter("medium.transmissions") - before
        assert costs[12] > costs[10]


class TestDsdv:
    def test_routes_converge_and_deliver(self):
        tb = chain_testbed(4, spacing=60.0, protocol=DsdvRouting)
        tb.warm_up(30.0)  # several advert rounds
        route = tb.node(1).protocol_on(WellKnownPorts.DSDV).route_to(4)
        assert route is not None
        assert route.next_hop in (2, 3)
        got = sink(tb.node(4))
        tb.node(1).protocol_on(WellKnownPorts.DSDV).send(4, SINK_PORT, b"dv")
        tb.run(until=tb.env.now + 2.0)
        assert len(got) == 1

    def test_metric_reflects_hop_distance(self):
        tb = chain_testbed(5, spacing=60.0, protocol=DsdvRouting)
        tb.warm_up(40.0)
        proto = tb.node(1).protocol_on(WellKnownPorts.DSDV)
        near = proto.route_to(2)
        far = proto.route_to(5)
        assert near is not None and far is not None
        assert far.metric > near.metric

    def test_routes_expire_when_node_goes_silent(self):
        tb = chain_testbed(3, spacing=60.0, protocol=DsdvRouting)
        tb.warm_up(30.0)
        proto = tb.node(1).protocol_on(WellKnownPorts.DSDV)
        assert proto.route_to(3) is not None
        # Node 3 disappears (radio off: no more adverts or beacons).
        tb.node(3).xcvr.enabled = False
        tb.warm_up(60.0)
        assert proto.route_to(3) is None

    def test_stop_halts_adverts(self):
        tb = chain_testbed(2, protocol=DsdvRouting)
        tb.warm_up(20.0)
        tb.node(1).uninstall_protocol(WellKnownPorts.DSDV)
        sent_before = tb.monitor.counter("dsdv.adverts_sent")
        # Only node 2 keeps advertising now.
        tb.warm_up(20.0)
        sent_after = tb.monitor.counter("dsdv.adverts_sent")
        assert sent_after - sent_before <= 6


class TestProtocolIndependence:
    def test_three_protocols_coexist_on_one_node(self):
        """§IV-A.1: multiple protocols co-exist; same payload runs over
        any of them by choosing the port."""
        tb = chain_testbed(4)
        for node in tb.nodes():
            node.install_protocol(GeographicForwarding)
            node.install_protocol(FloodingProtocol)
            node.install_protocol(DsdvRouting)
        tb.warm_up(30.0)
        got = sink(tb.node(4))
        # One probe per protocol, spaced out so the (unreliable,
        # retry-free) protocols are not racing each other on the channel:
        # the property under test is isolation, not contention survival.
        for port in (WellKnownPorts.GEOGRAPHIC, WellKnownPorts.FLOODING,
                     WellKnownPorts.DSDV):
            tb.node(1).protocol_on(port).send(4, SINK_PORT, bytes([port]))
            tb.run(until=tb.env.now + 2.0)
        assert sorted(p.payload[0] for p in got) == [
            WellKnownPorts.GEOGRAPHIC, WellKnownPorts.DSDV,
            WellKnownPorts.FLOODING,
        ]


def test_payload_size_limit_enforced():
    tb = chain_testbed(2, protocol=GeographicForwarding)
    proto = tb.node(1).protocol_on(10)
    with pytest.raises(ValueError):
        proto.send(2, SINK_PORT, b"x" * (proto.max_payload + 1))


def test_inner_port_range_enforced():
    tb = chain_testbed(2, protocol=GeographicForwarding)
    with pytest.raises(ValueError):
        tb.node(1).protocol_on(10).send(2, 300, b"")
