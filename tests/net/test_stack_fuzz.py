"""Fuzz the receive path: arbitrary bytes off the air must never crash.

A mote's radio hands the stack whatever decodes; the stack (and every
port subscriber above it) must drop garbage gracefully.  We synthesise
arrivals with hypothesis-generated payloads and feed them through the
full dispatch path of a node running every service.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deploy import deploy_liteview
from repro.mac.frame import Frame
from repro.net import Packet, append_crc
from repro.radio.medium import FrameArrival
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

import pytest


@pytest.fixture(scope="module")
def loaded_node():
    """A node with routing, ping, traceroute, controller installed."""
    testbed = build_chain(2, seed=3, propagation_kwargs=QUIET_PROPAGATION)
    deploy_liteview(testbed, warm_up=5.0)
    return testbed, testbed.node(1)


def synth_arrival(node, payload: bytes) -> FrameArrival:
    return FrameArrival(
        frame=Frame(src=2, dst=node.id, payload=payload, kind="data"),
        payload=payload, sender=2, receiver=node.id, channel=17,
        rx_power_dbm=-60.0, sinr_db=20.0, rssi=-15, lqi=108,
        crc_ok=True, time=node.env.now,
    )


@given(st.binary(min_size=0, max_size=100))
@settings(max_examples=120, deadline=None)
def test_random_bytes_never_crash_the_stack(loaded_node, payload):
    testbed, node = loaded_node
    node.stack._on_frame(synth_arrival(node, payload))
    # Drain whatever the garbage provoked; must not raise.
    testbed.run(until=testbed.env.now + 0.01)


@given(
    port=st.integers(0, 255),
    body=st.binary(min_size=0, max_size=40),
)
@settings(max_examples=120, deadline=None)
def test_valid_packets_with_random_bodies_never_crash(loaded_node, port,
                                                      body):
    """Structurally valid packets (good CRC) with arbitrary inner bytes
    hit real subscribers — ping, traceroute, controller, routing — and
    must be rejected without scheduler damage."""
    testbed, node = loaded_node
    packet = Packet(port=port, origin=2, dest=node.id, payload=body)
    node.stack._on_frame(synth_arrival(node, packet.to_bytes()))
    testbed.run(until=testbed.env.now + 0.01)


@given(st.binary(min_size=14, max_size=90))
@settings(max_examples=80, deadline=None)
def test_crc_valid_garbage_headers_never_crash(loaded_node, body):
    """Bytes with a *valid CRC trailer* but arbitrary header content
    exercise the header validation path specifically."""
    testbed, node = loaded_node
    node.stack._on_frame(synth_arrival(node, append_crc(body)))
    testbed.run(until=testbed.env.now + 0.01)
