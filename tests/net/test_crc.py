"""Unit and property tests for CRC16-CCITT."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CrcError
from repro.net import append_crc, crc16, split_and_verify


def test_known_vector():
    """CRC16-CCITT (FALSE) of ASCII '123456789' is 0x29B1."""
    assert crc16(b"123456789") == 0x29B1


def test_empty_input():
    assert crc16(b"") == 0xFFFF  # the initial value


@given(st.binary(max_size=200))
def test_roundtrip(data):
    assert split_and_verify(append_crc(data)) == data


@given(st.binary(min_size=1, max_size=100), st.integers(0, 7))
def test_single_bitflip_detected(data, bit):
    wire = bytearray(append_crc(data))
    wire[0] ^= 1 << bit
    with pytest.raises(CrcError):
        split_and_verify(bytes(wire))


@given(st.binary(min_size=3, max_size=100))
def test_trailer_corruption_detected(data):
    wire = bytearray(append_crc(data))
    wire[-1] ^= 0x01
    with pytest.raises(CrcError):
        split_and_verify(bytes(wire))


def test_too_short_rejected():
    with pytest.raises(CrcError):
        split_and_verify(b"\x00")


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_distinct_inputs_rarely_collide_on_prefix(a, b):
    """Sanity: CRC is a function (same input, same output)."""
    assert crc16(a) == crc16(a)
    if a != b:
        # Not a guarantee (collisions exist) — just require the check
        # value to be stable and within 16 bits.
        assert 0 <= crc16(b) <= 0xFFFF
