"""Unit tests for the communication stack (send/receive/dispatch/CRC)."""

import pytest

from repro.kernel import Testbed
from repro.net import Packet


@pytest.fixture
def pair():
    tb = Testbed(seed=5, propagation_kwargs={
        "shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0,
    })
    a = tb.add_node("192.168.0.1", (0.0, 0.0))
    b = tb.add_node("192.168.0.2", (5.0, 0.0))
    return tb, a, b


def test_send_and_dispatch(pair):
    tb, a, b = pair
    got = []
    b.stack.ports.subscribe(42, lambda p, arr: got.append((p, arr)))
    a.stack.send(Packet(port=42, origin=a.id, dest=b.id, payload=b"hi"), b.id)
    tb.run(until=0.5)
    [(packet, arrival)] = got
    assert packet.payload == b"hi"
    assert arrival.sender == a.id
    assert 50 <= arrival.lqi <= 110


def test_unmatched_port_counted(pair):
    tb, a, b = pair
    a.stack.send(Packet(port=77, origin=a.id, dest=b.id, payload=b""), b.id)
    tb.run(until=0.5)
    assert b.stack.ports.unmatched >= 1
    assert tb.monitor.counter("stack.unmatched_packets") >= 1


def test_local_loopback_no_radio(pair):
    tb, a, _b = pair
    got = []
    a.stack.ports.subscribe(42, lambda p, arr: got.append((p, arr)))
    before = tb.monitor.counter("medium.transmissions")
    assert a.stack.send_local(
        Packet(port=42, origin=a.id, dest=a.id, payload=b"loop")
    )
    assert got[0][0].payload == b"loop"
    assert got[0][1] is None  # no PHY observables on loopback
    assert tb.monitor.counter("medium.transmissions") == before


def test_broadcast_reaches_neighbor(pair):
    tb, a, b = pair
    got = []
    b.stack.ports.subscribe(42, lambda p, arr: got.append(p))
    a.stack.broadcast(Packet(port=42, origin=a.id, dest=0xFFFF, payload=b"x"))
    tb.run(until=0.5)
    assert len(got) == 1


def test_corrupted_frames_dropped_by_crc_checker():
    """On a marginal link the stack must count CRC drops and deliver
    nothing corrupted upward."""
    tb = Testbed(seed=11, propagation_kwargs={
        "shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0,
    })
    a = tb.add_node("a", (0.0, 0.0))
    b = tb.add_node("b", (93.0, 0.0))  # gray-region link
    got = []
    b.stack.ports.subscribe(42, lambda p, arr: got.append(p))

    def blast():
        for _ in range(400):
            a.stack.send(
                Packet(port=42, origin=a.id, dest=b.id, payload=b"payload"),
                b.id,
            )
            yield tb.env.timeout(0.02)

    tb.env.process(blast())
    tb.run(until=12.0)
    assert tb.monitor.counter("stack.crc_drops") > 0
    assert all(p.payload == b"payload" for p in got)
    assert got, "some packets must survive a gray-region link"


def test_stack_counters(pair):
    tb, a, b = pair
    b.stack.ports.subscribe(42, lambda p, arr: None)
    a.stack.send(Packet(port=42, origin=a.id, dest=b.id, payload=b""), b.id)
    tb.run(until=0.5)
    assert tb.monitor.counter("stack.sent_packets") >= 1
    assert tb.monitor.counter("stack.received_packets") >= 1
