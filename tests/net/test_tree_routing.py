"""Tests for ETX collection-tree routing."""

import pytest

from repro.kernel import Testbed
from repro.net import TREE_PORT, TreeRouting
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

SINK_PORT = 50


def tree_chain(n=5, spacing=60.0, seed=4, root=1):
    tb = build_chain(n, spacing=spacing, seed=seed,
                     propagation_kwargs=QUIET_PROPAGATION)
    for node in tb.nodes():
        node.install_protocol(TreeRouting, root=root)
    return tb


def sink(node):
    got = []
    node.stack.ports.subscribe(SINK_PORT, lambda p, a: got.append(p),
                               name="sink")
    return got


def test_tree_converges_with_monotone_costs():
    tb = tree_chain(5)
    tb.warm_up(40.0)
    costs = [tb.node(i).protocol_on(TREE_PORT).path_cost10()
             for i in range(1, 6)]
    assert costs[0] == 0  # root
    assert all(b > a for a, b in zip(costs, costs[1:]))
    parents = [tb.node(i).protocol_on(TREE_PORT).parent()
               for i in range(2, 6)]
    assert parents == [1, 2, 3, 4]


def test_collection_delivers_to_root():
    tb = tree_chain(5)
    tb.warm_up(40.0)
    got = sink(tb.node(1))
    assert tb.node(5).protocol_on(TREE_PORT).send(1, SINK_PORT, b"up")
    tb.warm_up(2.0)
    assert len(got) == 1
    assert got[0].origin == 5
    assert got[0].hop_count == 4


def test_non_root_destinations_are_unroutable():
    tb = tree_chain(4)
    tb.warm_up(40.0)
    before = tb.monitor.counter("routing.no_route")
    assert not tb.node(4).protocol_on(TREE_PORT).send(3, SINK_PORT, b"x")
    assert tb.monitor.counter("routing.no_route") == before + 1


def test_detached_node_has_no_parent():
    tb = Testbed(seed=4, propagation_kwargs=QUIET_PROPAGATION)
    tb.add_node("root", (0.0, 0.0))
    tb.add_node("near", (60.0, 0.0))
    tb.add_node("island", (5000.0, 0.0))
    for node in tb.nodes():
        node.install_protocol(TreeRouting, root=1)
    tb.warm_up(40.0)
    island = tb.node(3).protocol_on(TREE_PORT)
    assert island.parent() is None
    assert island.path_cost10() == 0xFFFF


def test_parent_expires_when_it_dies():
    tb = tree_chain(3)
    tb.warm_up(40.0)
    proto = tb.node(3).protocol_on(TREE_PORT)
    assert proto.parent() == 2
    tb.node(2).fail()
    tb.warm_up(40.0)
    assert proto.parent() != 2


def test_etx_prefers_two_good_links_over_one_marginal():
    """The metric contrast: a marginal direct link to the root loses to
    a clean two-hop path — hop-count routing would choose the opposite."""
    tb = Testbed(seed=6, propagation_kwargs=QUIET_PROPAGATION)
    tb.add_node("root", (0.0, 0.0))      # 1
    tb.add_node("relay", (45.0, 10.0))   # 2: two clean ~46/51 m links
    tb.add_node("leaf", (100.0, 0.0))    # 3: 100 m gray direct to root
    for node in tb.nodes():
        node.install_protocol(TreeRouting, root=1)
    tb.warm_up(80.0)  # enough beacons for PRR estimates to separate
    leaf = tb.node(3).protocol_on(TREE_PORT)
    assert leaf.parent() == 2, (
        f"leaf chose parent {leaf.parent()} with cost {leaf.path_cost10()}"
    )


def test_blacklisted_parent_not_used():
    tb = tree_chain(3)
    tb.warm_up(40.0)
    tb.node(3).neighbors.blacklist(2)
    # Forwarding refuses the blacklisted parent even if still recorded.
    assert tb.node(3).protocol_on(TREE_PORT).next_hop(
        __import__("repro.net.packet", fromlist=["Packet"]).Packet(
            port=TREE_PORT, origin=3, dest=1)
    ) is None


def test_stop_halts_adverts():
    tb = tree_chain(2)
    tb.warm_up(20.0)
    tb.node(2).uninstall_protocol(TREE_PORT)
    before = tb.monitor.counter("tree.adverts_sent")
    tb.warm_up(20.0)
    # Only the root keeps advertising.
    assert tb.monitor.counter("tree.adverts_sent") - before <= 6


def test_advert_interval_validation():
    tb = tree_chain(2)
    with pytest.raises(ValueError):
        tb.node(1).install_protocol(TreeRouting, port=99, root=1,
                                    advert_interval=0.0)
