"""Unit and property tests for the network packet format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CrcError, HeaderError, PaddingOverflow
from repro.net import ANY_NODE, HEADER_BYTES, Packet
from repro.net.padding import HopQuality


def make_packet(**kw):
    defaults = dict(port=10, origin=1, dest=2, payload=b"hello")
    defaults.update(kw)
    return Packet(**defaults)


def test_roundtrip_simple():
    p = make_packet(seq=7, ttl=5, hop_count=3)
    q = Packet.from_bytes(p.to_bytes())
    assert (q.port, q.origin, q.dest, q.seq, q.ttl, q.hop_count) == \
        (10, 1, 2, 7, 5, 3)
    assert q.payload == b"hello"
    assert not q.padding_enabled


packets = st.builds(
    Packet,
    port=st.integers(0, 255),
    origin=st.integers(0, 0xFFFF),
    dest=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=40),
    seq=st.integers(0, 0xFFFF),
    ttl=st.integers(0, 255),
    padding_enabled=st.booleans(),
    hop_count=st.integers(0, 255),
    hop_quality=st.lists(
        st.builds(HopQuality, lqi=st.integers(0, 255),
                  rssi=st.integers(-128, 127)),
        max_size=10,
    ),
)


@given(packets)
def test_roundtrip_property(p):
    q = Packet.from_bytes(p.to_bytes())
    assert q.port == p.port
    assert q.origin == p.origin
    assert q.dest == p.dest
    assert q.payload == p.payload
    assert q.seq == p.seq
    assert q.ttl == p.ttl
    assert q.padding_enabled == p.padding_enabled
    assert q.hop_count == p.hop_count
    assert q.hop_quality == p.hop_quality


@given(packets)
def test_wire_size_matches_serialisation(p):
    assert p.wire_size == len(p.to_bytes())


@given(packets, st.integers(0, 7))
def test_any_bitflip_is_caught(p, bit):
    """Every single-bit corruption must be rejected (CRC or structure)."""
    wire = bytearray(p.to_bytes())
    for idx in range(len(wire)):
        corrupted = bytearray(wire)
        corrupted[idx] ^= 1 << bit
        if bytes(corrupted) == bytes(wire):
            continue
        with pytest.raises((CrcError, HeaderError)):
            Packet.from_bytes(bytes(corrupted))


def test_padding_entries_roundtrip():
    p = make_packet(padding_enabled=True, payload=b"x" * 16)
    p.add_hop_quality(108, -20)
    p.add_hop_quality(95, -40)
    q = Packet.from_bytes(p.to_bytes())
    assert q.hop_quality == [HopQuality(108, -20), HopQuality(95, -40)]


def test_padding_requires_flag():
    p = make_packet(padding_enabled=False)
    with pytest.raises(PaddingOverflow):
        p.add_hop_quality(100, -10)


def test_paper_hop_budget_16_byte_probe():
    """§IV-C.3: 'as the probe packet has a payload of 16 bytes, as each
    hop takes two bytes in padding, a packet could at most travel 24
    hops'."""
    p = make_packet(padding_enabled=True, payload=b"p" * 16)
    assert p.padding_room == 24
    for _ in range(24):
        p.add_hop_quality(100, -10)
    with pytest.raises(PaddingOverflow):
        p.add_hop_quality(100, -10)


def test_full_payload_leaves_no_padding_room():
    p = make_packet(padding_enabled=True, payload=b"x" * 64)
    assert p.padding_room == 0
    with pytest.raises(PaddingOverflow):
        p.add_hop_quality(100, -10)


def test_oversize_payload_rejected():
    with pytest.raises(HeaderError):
        make_packet(payload=b"x" * 65)


@pytest.mark.parametrize("field,value", [
    ("port", 256), ("port", -1),
    ("origin", 0x10000), ("dest", -1),
    ("ttl", 256), ("hop_count", -1), ("seq", 0x10000),
])
def test_header_field_validation(field, value):
    with pytest.raises(HeaderError):
        make_packet(**{field: value})


def test_non_bytes_payload_rejected():
    with pytest.raises(HeaderError):
        make_packet(payload="text")  # type: ignore[arg-type]


def test_truncated_wire_rejected():
    wire = make_packet().to_bytes()
    with pytest.raises((CrcError, HeaderError)):
        Packet.from_bytes(wire[:HEADER_BYTES])


def test_copy_is_independent():
    p = make_packet(padding_enabled=True, payload=b"x" * 16)
    p.add_hop_quality(100, -10)
    q = p.copy()
    q.add_hop_quality(90, -20)
    assert len(p.hop_quality) == 1
    assert len(q.hop_quality) == 2


def test_any_node_constant():
    p = make_packet(dest=ANY_NODE)
    assert Packet.from_bytes(p.to_bytes()).dest == ANY_NODE
