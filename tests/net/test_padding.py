"""Unit and property tests for link-quality padding arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PaddingOverflow
from repro.net.padding import (
    PAD_ENTRY_BYTES,
    PAYLOAD_REGION_BYTES,
    HopQuality,
    decode_entries,
    encode_entries,
    max_padded_hops,
)


def test_paper_example():
    """16-byte probe → 24 hops of padding."""
    assert max_padded_hops(16) == 24


def test_empty_payload_maximum():
    assert max_padded_hops(0) == PAYLOAD_REGION_BYTES // PAD_ENTRY_BYTES


def test_full_payload_no_room():
    assert max_padded_hops(PAYLOAD_REGION_BYTES) == 0


@given(st.integers(0, PAYLOAD_REGION_BYTES))
def test_hop_budget_formula(n):
    hops = max_padded_hops(n)
    assert n + hops * PAD_ENTRY_BYTES <= PAYLOAD_REGION_BYTES
    assert n + (hops + 1) * PAD_ENTRY_BYTES > PAYLOAD_REGION_BYTES


def test_rejects_negative_and_oversize():
    with pytest.raises(ValueError):
        max_padded_hops(-1)
    with pytest.raises(ValueError):
        max_padded_hops(PAYLOAD_REGION_BYTES + 1)


entries = st.lists(
    st.builds(HopQuality, lqi=st.integers(0, 255),
              rssi=st.integers(-128, 127)),
    max_size=32,
)


@given(entries)
def test_encode_decode_roundtrip(es):
    assert decode_entries(encode_entries(es)) == es


@given(entries)
def test_encoding_is_two_bytes_per_hop(es):
    assert len(encode_entries(es)) == PAD_ENTRY_BYTES * len(es)


def test_odd_length_region_rejected():
    with pytest.raises(PaddingOverflow):
        decode_entries(b"\x01\x02\x03")


def test_hop_quality_validation():
    with pytest.raises(ValueError):
        HopQuality(lqi=256, rssi=0)
    with pytest.raises(ValueError):
        HopQuality(lqi=-1, rssi=0)
    with pytest.raises(ValueError):
        HopQuality(lqi=100, rssi=128)
    with pytest.raises(ValueError):
        HopQuality(lqi=100, rssi=-129)


def test_negative_rssi_survives_encoding():
    [entry] = decode_entries(encode_entries([HopQuality(100, -65)]))
    assert entry.rssi == -65
