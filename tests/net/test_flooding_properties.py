"""Property tests for flooding on random topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FloodingProtocol, WellKnownPorts
from repro.workloads import build_random_field
from repro.workloads.scenarios import QUIET_PROPAGATION


@given(
    seed=st.integers(1, 10_000),
    n_nodes=st.integers(4, 8),
    sends=st.integers(1, 3),
)
@settings(max_examples=10, deadline=None)
def test_at_most_once_delivery_per_flood(seed, n_nodes, sends):
    """However the flood propagates, dedup guarantees each node delivers
    each distinct send at most once."""
    testbed = build_random_field(
        n_nodes, radius=80.0, seed=seed, min_separation=25.0,
        propagation_kwargs=QUIET_PROPAGATION,
    )
    testbed.install_protocol_everywhere(FloodingProtocol)
    deliveries: dict[int, list[bytes]] = {n.id: [] for n in testbed.nodes()}
    for node in testbed.nodes():
        node.stack.ports.subscribe(
            77,
            lambda p, a, nid=node.id: deliveries[nid].append(p.payload),
            name="sink",
        )
    testbed.warm_up(5.0)
    source = testbed.node(1).protocol_on(WellKnownPorts.FLOODING)
    for i in range(sends):
        source.send(0xFFFF, 77, bytes([i]))
        testbed.warm_up(2.0)
    for node_id, got in deliveries.items():
        if node_id == 1:
            continue
        # No payload delivered twice at any node.
        assert len(got) == len(set(got)), (node_id, got)


def test_flood_covers_a_connected_component():
    """On a dense field, a broadcast flood reaches every node."""
    testbed = build_random_field(
        8, radius=70.0, seed=7, min_separation=20.0,
        propagation_kwargs=QUIET_PROPAGATION,
    )
    testbed.install_protocol_everywhere(FloodingProtocol)
    reached = set()
    for node in testbed.nodes():
        node.stack.ports.subscribe(
            77, lambda p, a, nid=node.id: reached.add(nid), name="sink",
        )
    testbed.warm_up(5.0)
    source = testbed.node(1).protocol_on(WellKnownPorts.FLOODING)
    # A couple of attempts to ride out chance collisions.
    for attempt in range(3):
        source.send(0xFFFF, 77, bytes([attempt]))
        testbed.warm_up(3.0)
        if len(reached) == len(testbed) - 1:
            break
    others = {n.id for n in testbed.nodes()} - {1}
    missing = others - reached
    assert not missing, f"flood never reached {missing}"
