"""Edge-case tests for the routing framework."""

import pytest

from repro.kernel import Testbed
from repro.net import GeographicForwarding, Packet
from repro.net.routing.base import MSG_DATA
from repro.workloads.scenarios import QUIET_PROPAGATION

SINK = 50


def pairbed(distance=40.0, seed=3):
    tb = Testbed(seed=seed, propagation_kwargs=QUIET_PROPAGATION)
    tb.add_node("a", (0.0, 0.0))
    tb.add_node("b", (distance, 0.0))
    tb.install_protocol_everywhere(GeographicForwarding)
    return tb


def test_ttl_zero_drops_immediately():
    tb = pairbed()
    tb.warm_up(10.0)
    before = tb.monitor.counter("routing.ttl_drops")
    assert not tb.node(1).protocol_on(10).send(2, SINK, b"x", ttl=0)
    assert tb.monitor.counter("routing.ttl_drops") == before + 1


def test_ttl_one_covers_one_hop():
    tb = pairbed()
    tb.warm_up(10.0)
    got = []
    tb.node(2).stack.ports.subscribe(SINK, lambda p, a: got.append(p))
    assert tb.node(1).protocol_on(10).send(2, SINK, b"x", ttl=1)
    tb.warm_up(1.0)
    assert len(got) == 1
    assert got[0].ttl == 0


def test_malformed_data_payload_counted():
    """A DATA packet too short to carry an inner port is dropped."""
    tb = pairbed()
    tb.warm_up(10.0)
    proto = tb.node(2).protocol_on(10)
    bad = Packet(port=10, origin=1, dest=2, payload=bytes([MSG_DATA]))
    proto._on_packet(bad, None)
    assert tb.monitor.counter("routing.malformed_data") == 1


def test_undeliverable_inner_port_counted():
    tb = pairbed()
    tb.warm_up(10.0)
    tb.node(1).protocol_on(10).send(2, 123, b"x")  # nobody on port 123
    tb.warm_up(1.0)
    assert tb.monitor.counter("routing.undeliverable") == 1


def test_unknown_control_type_counted():
    tb = pairbed()
    tb.warm_up(10.0)
    proto = tb.node(2).protocol_on(10)
    weird = Packet(port=10, origin=1, dest=2, payload=bytes([0x7F]))
    proto._on_packet(weird, None)
    assert tb.monitor.counter("routing.unknown_control") == 1


def test_seeded_padding_rejected_when_region_overflows():
    tb = pairbed()
    tb.warm_up(10.0)
    from repro.net.padding import HopQuality
    proto = tb.node(1).protocol_on(10)
    too_much = [HopQuality(100, -50)] * 30
    with pytest.raises(ValueError):
        proto.send(2, SINK, b"p" * 16, padding=True,
                   initial_quality=too_much)


def test_route_next_hop_matches_forwarding():
    tb = Testbed(seed=3, propagation_kwargs=QUIET_PROPAGATION)
    for i in range(3):
        tb.add_node(f"n{i}", (i * 60.0, 0.0))
    tb.install_protocol_everywhere(GeographicForwarding)
    tb.warm_up(10.0)
    assert tb.node(1).protocol_on(10).route_next_hop(3) == 2


def test_max_payload_exposed():
    tb = pairbed()
    assert tb.node(1).protocol_on(10).max_payload == 62
