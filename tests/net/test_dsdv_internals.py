"""Unit tests for DSDV internals: sequence arithmetic, advert packing."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel import Testbed
from repro.net import DsdvRouting, WellKnownPorts
from repro.net.routing.dsdv import (
    MAX_ENTRIES_PER_ADVERT,
    _parse_advert,
    _seq_newer,
)
from repro.workloads.scenarios import QUIET_PROPAGATION


def test_seq_newer_basic():
    assert _seq_newer(2, 1)
    assert not _seq_newer(1, 2)
    assert not _seq_newer(5, 5)


def test_seq_newer_wraparound():
    """Near the 16-bit wrap, 0x0002 is newer than 0xFFFE."""
    assert _seq_newer(0x0002, 0xFFFE)
    assert not _seq_newer(0xFFFE, 0x0002)


@given(st.integers(0, 0xFFFF), st.integers(1, 0x7FFE))
def test_seq_newer_consistent_with_distance(base, step):
    newer = (base + step) & 0xFFFF
    assert _seq_newer(newer, base)
    assert not _seq_newer(base, newer)


def test_parse_advert_roundtrip():
    entries = [(5, 2, 100), (9, 0, 2)]
    payload = bytes([0x10, len(entries)]) + b"".join(
        struct.pack(">HBH", *e) for e in entries
    )
    assert _parse_advert(payload) == entries


def test_parse_advert_rejects_bad_lengths():
    with pytest.raises(ValueError):
        _parse_advert(b"\x10")
    with pytest.raises(ValueError):
        _parse_advert(bytes([0x10, 2]) + b"\x00" * 5)  # one entry short


def test_large_tables_split_across_adverts():
    """A table bigger than one advert's capacity goes out in chunks."""
    tb = Testbed(seed=1, propagation_kwargs=QUIET_PROPAGATION)
    node = tb.add_node("hub", (0.0, 0.0))
    proto = node.install_protocol(DsdvRouting)
    # Fabricate a large table directly (unit-level).
    from repro.net.routing.dsdv import Route
    for dest in range(100, 100 + MAX_ENTRIES_PER_ADVERT + 5):
        proto._table[dest] = Route(dest=dest, next_hop=2, metric=1,
                                   seq=2, updated_at=tb.env.now)
    before = tb.monitor.counter("dsdv.adverts_sent")
    proto._broadcast_table()
    sent = tb.monitor.counter("dsdv.adverts_sent") - before
    assert sent == 2  # capacity + 6 entries (incl. self) need two adverts


def test_fringe_advert_counter():
    """Adverts below the LQI floor are counted, not learned from."""
    tb = Testbed(seed=8, propagation_kwargs=QUIET_PROPAGATION)
    tb.add_node("a", (0.0, 0.0))
    tb.add_node("b", (95.0, 0.0))  # gray link: low-LQI adverts
    tb.install_protocol_everywhere(DsdvRouting)
    tb.warm_up(60.0)
    assert tb.monitor.counter("dsdv.fringe_adverts_ignored") > 0
    route = tb.node(1).protocol_on(WellKnownPorts.DSDV).route_to(2)
    assert route is None  # never learned over the fringe link
