"""Unit tests for conditions (AnyOf / AllOf) and event composition."""

import pytest

from repro.sim import Environment


def test_all_of_waits_for_all():
    env = Environment()

    def worker():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, sorted(result.values()))

    assert env.run(until=env.process(worker())) == (3.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def worker():
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(10.0, value="slow")
        result = yield env.any_of([fast, slow])
        return (env.now, list(result.values()))

    assert env.run(until=env.process(worker())) == (1.0, ["fast"])


def test_any_of_as_timeout_pattern():
    """The receive-with-timeout idiom used throughout the LiteView stack."""
    env = Environment()

    def worker():
        data = env.event()  # never triggered: models a lost reply
        deadline = env.timeout(0.5, value="timeout")
        result = yield env.any_of([data, deadline])
        return list(result.values())

    assert env.run(until=env.process(worker())) == ["timeout"]


def test_empty_all_of_succeeds_immediately():
    env = Environment()

    def worker():
        result = yield env.all_of([])
        return result

    assert env.run(until=env.process(worker())) == {}


def test_empty_any_of_succeeds_immediately():
    env = Environment()

    def worker():
        result = yield env.any_of([])
        return result

    assert env.run(until=env.process(worker())) == {}


def test_condition_over_already_processed_event():
    env = Environment()
    t = env.timeout(1.0, value="early")
    env.run()

    def worker():
        result = yield env.any_of([t])
        return list(result.values())

    assert env.run(until=env.process(worker())) == ["early"]


def test_condition_fails_when_member_fails():
    env = Environment()

    def failing_child():
        yield env.timeout(1.0)
        raise ValueError("nope")

    def worker():
        try:
            yield env.all_of([env.process(failing_child()), env.timeout(5.0)])
        except ValueError:
            return "propagated"

    assert env.run(until=env.process(worker())) == "propagated"


def test_condition_rejects_foreign_events():
    env = Environment()
    other = Environment()
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        env.all_of([other.timeout(1.0)])


def test_all_of_result_maps_events_to_values():
    env = Environment()
    t1 = env.timeout(1.0, value=10)
    t2 = env.timeout(2.0, value=20)

    def worker():
        result = yield env.all_of([t1, t2])
        return result

    result = env.run(until=env.process(worker()))
    assert result == {t1: 10, t2: 20}


def test_any_of_processes_losers_without_crash():
    """The slower branch of an AnyOf must not crash the run afterwards."""
    env = Environment()

    def worker():
        yield env.any_of([env.timeout(1.0), env.timeout(2.0)])
        return "ok"

    proc = env.process(worker())
    env.run()  # drains everything including the slow timeout
    assert proc.value == "ok"
    assert env.now == 2.0
