"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Infinity


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(1.5)
    env.run()
    assert env.now == 1.5


def test_run_until_number_lands_exactly():
    env = Environment()
    env.timeout(1.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_number_processes_only_due_events():
    env = Environment()
    fired = []
    env.timeout(1.0).add_callback(lambda e: fired.append(1.0))
    env.timeout(3.0).add_callback(lambda e: fired.append(3.0))
    env.run(until=2.0)
    assert fired == [1.0]


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_events_process_in_time_order():
    env = Environment()
    order = []
    for delay in (3.0, 1.0, 2.0):
        env.timeout(delay, value=delay).add_callback(
            lambda e: order.append(e.value)
        )
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_equal_time_events_process_in_insertion_order():
    env = Environment()
    order = []
    for i in range(5):
        env.timeout(1.0, value=i).add_callback(lambda e: order.append(e.value))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_step_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_empty_is_infinity():
    env = Environment()
    assert env.peek() == Infinity


def test_peek_returns_next_timestamp():
    env = Environment()
    env.timeout(2.0)
    env.timeout(1.0)
    assert env.peek() == 1.0


def test_schedule_into_past_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-1.0)


def test_run_until_event_returns_value():
    env = Environment()
    t = env.timeout(2.0, value="done")
    assert env.run(until=t) == "done"
    assert env.now == 2.0


def test_run_until_event_already_processed():
    env = Environment()
    t = env.timeout(1.0, value=42)
    env.run()
    assert env.run(until=t) == 42


def test_run_until_event_never_triggered_raises():
    env = Environment()
    pending = env.event()
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=pending)


def test_unhandled_failure_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defused = True
    env.run()  # should not raise


def test_succeed_twice_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_negative_timeout_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-0.5)


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_event_ok_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().ok


def test_callback_after_processed_fires_immediately():
    env = Environment()
    ev = env.timeout(0.0, value=7)
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_pooled_timeout_advances_clock_and_delivers_value():
    env = Environment()
    seen = []

    def proc():
        value = yield env.pooled_timeout(1.5, value="tick")
        seen.append((env.now, value))

    env.process(proc())
    env.run()
    assert seen == [(1.5, "tick")]


def test_pooled_timeout_reuses_instances():
    env = Environment()
    first = env.pooled_timeout(0.1)
    env.run()
    # ``first`` went back to the pool after its callbacks ran; the next
    # request must hand out the same object, fully reset.
    second = env.pooled_timeout(0.2)
    assert second is first
    assert second.delay == 0.2
    assert second.callbacks == []
    assert not second.processed
    fired = []
    second.add_callback(lambda e: fired.append(env.now))
    env.run()
    assert fired == [0.1 + 0.2]


def test_pooled_timeout_negative_delay_raises_and_keeps_pool():
    env = Environment()
    env.pooled_timeout(0.0)
    env.run()
    size = len(env._timeout_pool)
    assert size >= 1
    with pytest.raises(SimulationError):
        env.pooled_timeout(-1.0)
    assert len(env._timeout_pool) == size  # instance returned, not lost


def test_pooled_and_plain_timeouts_interleave_in_order():
    env = Environment()
    order = []
    env.timeout(1.0, value="plain").add_callback(
        lambda e: order.append(e.value)
    )
    env.pooled_timeout(1.0, value="pooled").add_callback(
        lambda e: order.append(e.value)
    )
    env.run()
    assert order == ["plain", "pooled"]  # insertion order at equal time
