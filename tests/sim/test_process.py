"""Unit tests for generator-coroutine processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import Environment


def test_process_runs_and_returns_value():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        return "result"

    proc = env.process(worker())
    assert env.run(until=proc) == "result"
    assert env.now == 1.0


def test_process_receives_timeout_value():
    env = Environment()
    got = []

    def worker():
        value = yield env.timeout(1.0, value="hello")
        got.append(value)

    env.run(until=env.process(worker()))
    assert got == ["hello"]


def test_process_is_alive_until_done():
    env = Environment()

    def worker():
        yield env.timeout(2.0)

    proc = env.process(worker())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 99

    def parent():
        value = yield env.process(child())
        return value + 1

    assert env.run(until=env.process(parent())) == 100


def test_sequential_timeouts_accumulate():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        yield env.timeout(2.0)
        return env.now

    assert env.run(until=env.process(worker())) == 3.0


def test_exception_in_process_fails_process_event():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        raise RuntimeError("bad")

    proc = env.process(worker())
    with pytest.raises(RuntimeError, match="bad"):
        env.run()
    assert proc.triggered and not proc.ok


def test_parent_catches_child_failure():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            return f"caught: {exc}"

    assert env.run(until=env.process(parent())) == "caught: child died"


def test_yielding_non_event_fails_process():
    env = Environment()

    def worker():
        yield 42  # type: ignore[misc]

    proc = env.process(worker())
    with pytest.raises(SimulationError):
        env.run()
    assert not proc.ok


def test_yielding_foreign_event_fails_process():
    env = Environment()
    other = Environment()

    def worker():
        yield other.timeout(1.0)

    env.process(worker())
    with pytest.raises(SimulationError):
        env.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt as intr:
            seen.append(intr.cause)
            return "interrupted"

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt("wake up")

    env.process(interrupter())
    assert env.run(until=proc) == "interrupted"
    assert seen == ["wake up"]
    assert env.now == 1.0


def test_interrupt_finished_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(0.5)

    proc = env.process(quick())
    env.run()
    proc.interrupt("too late")  # must not raise
    env.run()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper():
        yield env.timeout(100.0)

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(interrupter())
    with pytest.raises(ProcessInterrupt):
        env.run()


def test_interrupted_process_can_keep_working():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt:
            pass
        yield env.timeout(2.0)
        return env.now

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(interrupter())
    assert env.run(until=proc) == 3.0


def test_active_process_visible_during_resume():
    env = Environment()
    seen = []

    def worker():
        seen.append(env.active_process)
        yield env.timeout(1.0)

    proc = env.process(worker())
    env.run()
    assert seen == [proc]
    assert env.active_process is None


def test_process_name_defaults_to_generator_name():
    env = Environment()

    def my_worker():
        yield env.timeout(0.0)

    proc = env.process(my_worker())
    assert proc.name == "my_worker"
    env.run()


def test_two_processes_interleave():
    env = Environment()
    order = []

    def ticker(name, period):
        for _ in range(3):
            yield env.timeout(period)
            order.append((name, env.now))

    env.process(ticker("a", 1.0))
    env.process(ticker("b", 1.5))
    env.run()
    # At t=3.0 both fire; b's timeout was scheduled first (at t=1.5, vs.
    # a's at t=2.0), so insertion order puts b ahead deterministically.
    assert order == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5),
    ]
