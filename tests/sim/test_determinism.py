"""Determinism properties: seeded worlds replay exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry


@given(seed=st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_named_streams_reproducible(seed):
    a = RngRegistry(seed)
    b = RngRegistry(seed)
    assert a.stream("x").random() == b.stream("x").random()
    assert (a.stream("y").integers(0, 1000)
            == b.stream("y").integers(0, 1000))


@given(seed=st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_streams_independent_of_creation_order(seed):
    a = RngRegistry(seed)
    b = RngRegistry(seed)
    # Materialise streams in different orders; draws must not change.
    a.stream("alpha")
    a_val = a.stream("beta").random()
    b.stream("gamma")
    b.stream("beta")
    b.stream("alpha")
    b2 = RngRegistry(seed)
    assert b2.stream("beta").random() == a_val


def test_different_names_differ():
    rng = RngRegistry(5)
    assert rng.stream("a").random() != rng.stream("b").random()


@given(seed=st.integers(0, 1000), salt=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_fork_changes_all_streams(seed, salt):
    base = RngRegistry(seed)
    fork = base.fork(salt + 1)
    # The fork draws a different sequence (different master seed) unless
    # the arithmetic degenerately collides, which must not happen for
    # small inputs.
    if fork.master_seed != base.master_seed:
        assert fork.stream("x").random() != base.stream("x").random()


def test_full_stack_world_replays_identically():
    """Two same-seed deployments produce identical packet logs."""
    from repro.core.deploy import deploy_liteview
    from repro.workloads import build_chain
    from repro.workloads.scenarios import QUIET_PROPAGATION

    def run():
        tb = build_chain(3, seed=21, propagation_kwargs=QUIET_PROPAGATION)
        dep = deploy_liteview(tb, warm_up=20.0)
        dep.login("192.168.0.1")
        dep.run("ping 192.168.0.3 round=2 port=10")
        return [(round(r.time, 9), r.sender, r.receiver, r.kind,
                 r.size_bytes, r.delivered) for r in tb.monitor.packets]

    assert run() == run()
