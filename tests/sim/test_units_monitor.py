"""Unit tests for units arithmetic and the monitor."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.monitor import Monitor, PacketRecord
from repro.units import (
    BYTE_AIRTIME,
    MS,
    US,
    dbm_sum,
    dbm_to_mw,
    mw_to_dbm,
    ms,
    to_ms,
    us,
)


def test_time_constants():
    assert ms(1) == MS == 1e-3
    assert us(1) == US == 1e-6
    assert to_ms(0.0047) == pytest.approx(4.7)
    assert BYTE_AIRTIME == pytest.approx(32e-6)


@given(st.floats(-120.0, 30.0))
def test_dbm_mw_roundtrip(dbm):
    assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


def test_mw_to_dbm_clamps_nonpositive():
    assert mw_to_dbm(0.0) < -250
    assert mw_to_dbm(-5.0) < -250


def test_dbm_sum_doubles_equal_powers():
    """Two equal powers sum to +3 dB."""
    assert dbm_sum(-90.0, -90.0) == pytest.approx(-90.0 + 10 * math.log10(2))


def test_dbm_sum_dominated_by_strongest():
    assert dbm_sum(-50.0, -120.0) == pytest.approx(-50.0, abs=0.01)


def test_dbm_sum_empty_is_floor():
    assert dbm_sum() < -250


# -- monitor -----------------------------------------------------------------

def test_counters_default_zero():
    mon = Monitor()
    assert mon.counter("never") == 0
    mon.count("x", 3)
    mon.count("x")
    assert mon.counter("x") == 4


def test_series_and_tags():
    mon = Monitor()
    mon.record("rtt", 1.0, 4.7, hop=1, power=31)
    [sample] = mon.series("rtt")
    assert sample.value == 4.7
    assert sample.tag("hop") == 1
    assert sample.tag("missing") is None
    assert mon.series_values("rtt") == [4.7]
    assert mon.series_names() == ["rtt"]


def test_packet_count_filters():
    mon = Monitor()
    for i, kind in enumerate(("ping", "ping", "beacon")):
        mon.log_packet(PacketRecord(
            time=float(i), sender=1, receiver=2, kind=kind, port=None,
            size_bytes=10, delivered=(i != 1),
        ))
    assert mon.packet_count() == 3
    assert mon.packet_count(kind="ping") == 2
    assert mon.packet_count(kind="ping",
                            predicate=lambda r: r.delivered) == 1


def test_packet_count_predicate_without_kind():
    mon = Monitor()
    for i in range(4):
        mon.log_packet(PacketRecord(
            time=float(i), sender=1, receiver=2, kind="data", port=None,
            size_bytes=10 * (i + 1), delivered=True,
        ))
    assert mon.packet_count(predicate=lambda r: r.size_bytes > 20) == 2


def test_packet_count_unmatched_kind_is_zero():
    mon = Monitor()
    mon.log_packet(PacketRecord(time=0.0, sender=1, receiver=2,
                                kind="ping", port=None, size_bytes=1,
                                delivered=True))
    assert mon.packet_count(kind="beacon") == 0
    assert mon.packet_count(kind="ping",
                            predicate=lambda r: not r.delivered) == 0


def test_packet_count_empty_log():
    assert Monitor().packet_count() == 0
    assert Monitor().packet_count(kind="ping") == 0


def test_reset_clears_everything():
    mon = Monitor()
    mon.count("x")
    mon.record("s", 0.0, 1.0)
    mon.log_packet(PacketRecord(time=0, sender=1, receiver=None,
                                kind="d", port=None, size_bytes=1,
                                delivered=True))
    mon.reset()
    assert mon.counter("x") == 0
    assert mon.series("s") == []
    assert mon.packets == []
