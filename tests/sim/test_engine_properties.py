"""Property tests for the event scheduler's ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).add_callback(lambda e: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_clock_never_goes_backwards_under_nested_scheduling(delays):
    env = Environment()
    observed = []

    def worker(my_delays):
        last = env.now
        for delay in my_delays:
            yield env.timeout(delay)
            assert env.now >= last
            observed.append(env.now)
            last = env.now

    env.process(worker(list(delays)))
    env.run()
    assert len(observed) == len(delays)


@given(st.integers(1, 40))
@settings(max_examples=30, deadline=None)
def test_simultaneous_events_fifo(n):
    """All events at the same instant process in insertion order."""
    env = Environment()
    order = []
    for i in range(n):
        env.timeout(1.0, value=i).add_callback(
            lambda e: order.append(e.value))
    env.run()
    assert order == list(range(n))


@given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=20),
       st.floats(0.5, 10.0))
@settings(max_examples=40, deadline=None)
def test_run_until_horizon_is_exact_partition(delays, horizon):
    """Events strictly before the horizon fire; later ones stay queued
    and fire on the next run — no event lost or duplicated."""
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay, value=delay).add_callback(
            lambda e: fired.append(e.value))
    env.run(until=horizon)
    early = [d for d in delays if d <= horizon]
    assert sorted(fired) == sorted(early)
    env.run()
    assert sorted(fired) == sorted(delays)
