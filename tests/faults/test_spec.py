"""FaultSpec / FaultPlan validation and serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.spec import DEFAULT_REBOOT_DOWNTIME


def test_kind_vocabulary_is_stable():
    assert FAULT_KINDS == (
        "node_crash", "node_reboot", "link_degrade", "interference_burst",
        "packet_corrupt", "queue_saturate", "clock_drift",
    )


@pytest.mark.parametrize("bad", [
    dict(kind="martians"),
    dict(kind="node_crash"),                          # no node scope
    dict(kind="node_crash", nodes=(1,), at=-1.0),
    dict(kind="node_crash", nodes=(1,), duration=0.0),
    dict(kind="link_degrade", loss_db=10.0),          # no link
    dict(kind="link_degrade", link=(1, 2)),           # no loss
    dict(kind="link_degrade", link=(1, 2), loss_db=5.0, ramp_s=-1.0),
    dict(kind="interference_burst", loss_db=10.0),    # no channel
    dict(kind="interference_burst", channel=17),      # no raise
    dict(kind="packet_corrupt", probability=0.0),
    dict(kind="packet_corrupt", probability=1.5),
    dict(kind="queue_saturate", nodes=(1,)),          # no capacity
    dict(kind="queue_saturate", nodes=(1,), capacity=0),
    dict(kind="clock_drift", nodes=(1,), drift=-1.0),
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(ValueError):
        FaultSpec(**bad)


def test_reboot_downtime_defaults():
    spec = FaultSpec(kind="node_reboot", at=5.0, nodes=(2,))
    assert spec.downtime == DEFAULT_REBOOT_DOWNTIME
    assert spec.ends_at == 5.0 + DEFAULT_REBOOT_DOWNTIME
    explicit = FaultSpec(kind="node_reboot", at=5.0, nodes=(2,),
                         duration=3.0)
    assert explicit.downtime == 3.0 and explicit.ends_at == 8.0


def test_open_ended_fault_has_no_end():
    spec = FaultSpec(kind="node_crash", at=1.0, nodes=(4,))
    assert spec.downtime is None and spec.ends_at is None


def test_plan_activity():
    assert not FaultPlan().is_active
    assert not FaultPlan(enabled=False, specs=(
        FaultSpec(kind="node_crash", nodes=(1,)),)).is_active
    assert FaultPlan(specs=(
        FaultSpec(kind="node_crash", nodes=(1,)),)).is_active


def test_from_param_accepts_all_forms():
    plan = FaultPlan(name="p", specs=(
        FaultSpec(kind="link_degrade", at=2.0, link=(1, 2), loss_db=9.0),))
    assert FaultPlan.from_param(plan) is plan
    assert FaultPlan.from_param(plan.to_param()) == plan
    assert FaultPlan.from_param(plan.to_dict()) == plan
    assert not FaultPlan.from_param(None).is_active
    assert not FaultPlan.from_param("null").is_active


def test_to_param_is_canonical():
    a = FaultSpec(kind="queue_saturate", at=1.0, nodes=(3, 1),
                  capacity=2)
    b = FaultSpec(kind="queue_saturate", at=1.0, nodes=[3, 1],
                  capacity=2)
    assert FaultPlan(specs=(a,)).to_param() == FaultPlan(specs=(b,)).to_param()
    assert " " not in FaultPlan(specs=(a,)).to_param()


# -- property: every representable plan survives the JSON round trip ------

_node = st.integers(1, 9)
_at = st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False)
_duration = st.one_of(st.none(), st.floats(min_value=0.1, max_value=20.0,
                                           allow_nan=False))

_spec = st.one_of(
    st.builds(FaultSpec, kind=st.just("node_crash"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=3)),
    st.builds(FaultSpec, kind=st.just("node_reboot"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=2)),
    st.builds(FaultSpec, kind=st.just("link_degrade"), at=_at,
              duration=_duration,
              link=st.tuples(_node, _node),
              loss_db=st.floats(0.5, 80.0, allow_nan=False),
              ramp_s=st.floats(0.0, 10.0, allow_nan=False),
              directed=st.booleans()),
    st.builds(FaultSpec, kind=st.just("interference_burst"), at=_at,
              duration=_duration, channel=st.integers(11, 26),
              loss_db=st.floats(1.0, 40.0, allow_nan=False)),
    st.builds(FaultSpec, kind=st.just("packet_corrupt"), at=_at,
              duration=_duration,
              probability=st.floats(0.01, 1.0, allow_nan=False),
              nodes=st.lists(_node, max_size=2)),
    st.builds(FaultSpec, kind=st.just("queue_saturate"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=2),
              capacity=st.integers(1, 8)),
    st.builds(FaultSpec, kind=st.just("clock_drift"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=2),
              drift=st.floats(-0.5, 1.0, allow_nan=False)),
)

plans = st.builds(
    FaultPlan,
    name=st.text(max_size=8),
    specs=st.lists(_spec, max_size=4).map(tuple),
    enabled=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(plan=plans)
def test_plan_round_trips_through_canonical_json(plan):
    encoded = plan.to_param()
    decoded = FaultPlan.from_param(encoded)
    assert decoded == plan
    assert decoded.to_param() == encoded
