"""End-to-end chaos soak: an 8-node chain under a mixed fault plan.

The bar the subsystem has to clear: with crashes, corruption,
interference, queue clamps and a broken link all in one plan, the
toolkit's commands still *return* (possibly with failed results — that
is what they are for), nothing deadlocks, and the diagnosis workflow
names the injured hop.
"""

from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import probe_path
from repro.diag import DiagnosisEngine, ProbePlan
from repro.errors import CommandTimeout
from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

#: The hop the plan injures permanently (survey must name it).
INJURED = (4, 5)

PLAN = FaultPlan(name="soak", specs=(
    # Transient chaos while the first commands run (t = 15..25):
    FaultSpec(kind="packet_corrupt", at=15.0, duration=10.0,
              probability=0.15),
    FaultSpec(kind="interference_burst", at=18.0, duration=1.5,
              channel=17, loss_db=25.0),
    FaultSpec(kind="node_reboot", at=16.0, nodes=(7,)),
    # Standing impairments that must not break the control plane:
    FaultSpec(kind="queue_saturate", at=15.0, nodes=(2,), capacity=2),
    FaultSpec(kind="clock_drift", at=15.0, nodes=(6,), drift=0.05),
    # The injury the diagnosis pass has to localise (t >= 30):
    FaultSpec(kind="link_degrade", at=30.0, link=INJURED, loss_db=80.0),
))


def test_chaos_soak_commands_return_and_diagnosis_names_injured_hop():
    tb = build_chain(8, spacing=60.0, seed=21,
                     propagation_kwargs=QUIET_PROPAGATION)
    injector = install_faults(tb, PLAN)
    dep = deploy_liteview(tb, warm_up=15.0)

    # Phase 1 — commands issued *during* the transient chaos window.
    # They may lose rounds; they must come back.
    dep.login("192.168.0.1")
    dep.run("ping 192.168.0.8 round=3 length=16")
    chaos_ping = dep.interpreter.last_result
    assert chaos_ping is not None
    assert chaos_ping.received + chaos_ping.lost == 3

    try:
        chaos_trace = probe_path(dep, 1, 8)
    except CommandTimeout:
        chaos_trace = None  # a failed traceroute is a *result* here
    if chaos_trace is not None:
        assert len(chaos_trace.hops) <= 7

    # Phase 2 — let the transients expire, then the standing injury
    # lands at t=30 and the path to node 8 dies at hop 4->5.
    if tb.env.now < 35.0:
        tb.warm_up(35.0 - tb.env.now)
    dep.run("ping 192.168.0.8 round=3 length=16")
    broken_ping = dep.interpreter.last_result
    assert broken_ping.received == 0 and broken_ping.lost == 3

    try:
        broken_trace = probe_path(dep, 1, 8)
    except CommandTimeout:
        broken_trace = None
    if broken_trace is not None:
        assert not broken_trace.reached_target
        assert all(h.probed_node_id <= INJURED[0] for h in broken_trace.hops)

    # Phase 3 — the diagnosis engine's site-survey walk localises the
    # injury by name (the same probe pipeline the legacy survey_links
    # wrapper drives, plus the finding reduction on top).
    report = DiagnosisEngine(dep).run(ProbePlan(
        links=tuple((i, i + 1) for i in range(1, 8)),
        rounds=6, length=16,
    ))
    assert {f.link for f in report.of_kind("broken_link")} == {INJURED}
    assert not report.of_kind("dead_node")  # the reboot expired long ago
    named = next(iter(report.of_kind("broken_link")))
    assert named.evidence["received"] == 0
    assert f"link {INJURED[0]}->{INJURED[1]}" in report.explain()

    # The whole soak ran bounded — nothing hung waiting forever.
    assert tb.env.now < 500.0
    assert injector.activations["link_degrade"] == 1
    assert tb.monitor.counter("faults.activations") >= 6
