"""Fault plans as first-class campaign parameters."""

import pytest

from repro.campaign import Campaign, run_campaign
from repro.campaign.spec import derive_seed
from repro.faults import FaultPlan, FaultSpec

CHAOS_PLAN = FaultPlan(name="campaign-chaos", specs=(
    FaultSpec(kind="link_degrade", at=5.0, duration=8.0, link=(1, 2),
              loss_db=45.0),
    FaultSpec(kind="packet_corrupt", at=2.0, duration=10.0,
              probability=0.4),
))

CHAOS = Campaign(
    name="chaos-tiny", scenario="chain_beacons", seed=5,
    base_params={"seconds": 5.0}, grid={"nodes": [3, 4]}, repeats=1,
    fault_plan=CHAOS_PLAN,
)

PLAIN = Campaign(
    name="chaos-tiny", scenario="chain_beacons", seed=5,
    base_params={"seconds": 5.0}, grid={"nodes": [3, 4]}, repeats=1,
)


def test_fault_plan_becomes_a_cell_parameter():
    for cell in CHAOS.cells():
        assert cell["fault_plan"] == CHAOS_PLAN.to_param()
    for cell in PLAIN.cells():
        assert "fault_plan" not in cell


def test_fault_plan_perturbs_derived_seeds():
    chaos_seeds = [s.seed for s in CHAOS.expand()]
    plain_seeds = [s.seed for s in PLAIN.expand()]
    assert set(chaos_seeds).isdisjoint(plain_seeds)
    # No-plan campaigns keep their historical seeds exactly.
    assert plain_seeds[0] == derive_seed(
        5, "chain_beacons", {"seconds": 5.0, "nodes": 3}, 0)


def test_fault_plan_field_conflicts_with_explicit_param():
    with pytest.raises(ValueError):
        Campaign(name="x", scenario="chain_beacons",
                 base_params={"fault_plan": "null"},
                 fault_plan=CHAOS_PLAN)


def test_chaos_campaign_is_reproducible_serially():
    first = run_campaign(CHAOS, workers=1)
    second = run_campaign(CHAOS, workers=1)
    assert first.failures == []
    assert first.digest() == second.digest()
    # The plan visibly changed every run relative to the plain campaign.
    plain = run_campaign(PLAIN, workers=1)
    chaos_shas = [r.packet_sha256 for r in first.runs]
    plain_shas = [r.packet_sha256 for r in plain.runs]
    assert set(chaos_shas).isdisjoint(plain_shas)


def test_chaos_campaign_caches_like_any_other(tmp_path):
    first = run_campaign(CHAOS, workers=1, cache=tmp_path)
    assert first.n_cached == 0
    again = run_campaign(CHAOS, workers=1, cache=tmp_path)
    assert again.n_cached == len(again.runs)
    assert again.digest() == first.digest()
    # A different plan is a different cache key.
    other = Campaign(
        name="chaos-tiny", scenario="chain_beacons", seed=5,
        base_params={"seconds": 5.0}, grid={"nodes": [3, 4]}, repeats=1,
        fault_plan=FaultPlan(name="other", specs=(
            FaultSpec(kind="node_crash", at=1.0, nodes=(2,)),)),
    )
    assert run_campaign(other, workers=1, cache=tmp_path).n_cached == 0


def test_chaos_scenario_reports_fault_observables():
    fast = Campaign(
        name="chaos-cell", scenario="chaos_chain", seed=3,
        base_params={"nodes": 4, "rounds": 2},
        fault_plan=FaultPlan(name="mid-break", specs=(
            FaultSpec(kind="link_degrade", at=15.0, link=(2, 3),
                      loss_db=80.0),)),
    )
    out = run_campaign(fast, workers=1)
    assert out.failures == []
    run = out.runs[0]
    assert run.values["ping_received"] == 0      # path severed pre-command
    assert run.values["ping_rounds"] == 2
    assert not run.values["reached_target"]
    assert run.values["activations"] == {"link_degrade": 1}


@pytest.mark.slow
def test_sharded_chaos_campaign_matches_serial():
    serial = run_campaign(CHAOS, workers=1)
    sharded = run_campaign(CHAOS, workers=2, mp_context="spawn")
    assert sharded.digest() == serial.digest()
