"""The fault subsystem's determinism contract.

Two properties, asserted over *random* plans:

* same seed + same plan  ⇒  bit-identical packet digests;
* a disabled plan  ⇒  bit-identical to no plan at all (the golden-
  fixture safety property: chaos code that is off does not exist).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

SECONDS = 8.0

_node = st.integers(1, 3)
_pair = st.sampled_from([(1, 2), (2, 3), (1, 3)])
_at = st.floats(0.0, 6.0, allow_nan=False, allow_infinity=False)
_duration = st.one_of(st.none(),
                      st.floats(0.5, 5.0, allow_nan=False))

_spec = st.one_of(
    st.builds(FaultSpec, kind=st.just("node_crash"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=2)),
    st.builds(FaultSpec, kind=st.just("node_reboot"), at=_at,
              nodes=st.lists(_node, min_size=1, max_size=1)),
    st.builds(FaultSpec, kind=st.just("link_degrade"), at=_at,
              duration=_duration, link=_pair,
              loss_db=st.floats(1.0, 70.0, allow_nan=False),
              ramp_s=st.floats(0.0, 3.0, allow_nan=False),
              directed=st.booleans()),
    st.builds(FaultSpec, kind=st.just("interference_burst"), at=_at,
              duration=_duration, channel=st.sampled_from([17, 18]),
              loss_db=st.floats(5.0, 35.0, allow_nan=False)),
    st.builds(FaultSpec, kind=st.just("packet_corrupt"), at=_at,
              duration=_duration,
              probability=st.floats(0.05, 1.0, allow_nan=False),
              nodes=st.lists(_node, max_size=2)),
    st.builds(FaultSpec, kind=st.just("queue_saturate"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=2),
              capacity=st.integers(1, 4)),
    st.builds(FaultSpec, kind=st.just("clock_drift"), at=_at,
              duration=_duration, nodes=st.lists(_node, min_size=1,
                                                 max_size=1),
              drift=st.floats(-0.4, 1.0, allow_nan=False)),
)

plans = st.builds(FaultPlan, name=st.just("prop"),
                  specs=st.lists(_spec, min_size=1, max_size=3).map(tuple))


def run_world(seed, plan):
    tb = build_chain(3, spacing=60.0, seed=seed,
                     propagation_kwargs=QUIET_PROPAGATION)
    install_faults(tb, plan)
    tb.run(until=SECONDS)
    return tb


def digest(seed, plan):
    return run_world(seed, plan).monitor.packet_digest()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=plans, seed=st.integers(1, 1000))
def test_same_seed_same_plan_is_bit_identical(plan, seed):
    assert digest(seed, plan) == digest(seed, plan)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=plans, seed=st.integers(1, 1000))
def test_disabled_plan_matches_no_plan(plan, seed):
    disabled = FaultPlan(name=plan.name, specs=plan.specs, enabled=False)
    assert digest(seed, disabled) == digest(seed, None)


def test_round_trip_plan_runs_identically():
    """The canonical-JSON form injects exactly like the object form."""
    plan = FaultPlan(name="rt", specs=(
        FaultSpec(kind="link_degrade", at=2.0, duration=3.0, link=(1, 2),
                  loss_db=40.0),
        FaultSpec(kind="packet_corrupt", at=1.0, probability=0.5),
    ))
    assert digest(9, plan) == digest(9, plan.to_param())


def test_active_plan_changes_the_world():
    """Sanity: injection is not a no-op when it should bite."""
    plan = FaultPlan(name="bite", specs=(
        FaultSpec(kind="node_crash", at=1.0, nodes=(2,)),))
    assert digest(9, plan) != digest(9, None)


def test_different_seeds_decorrelate_stochastic_faults():
    plan = FaultPlan(name="rng", specs=(
        FaultSpec(kind="packet_corrupt", at=0.0, probability=0.5),))
    assert digest(1, plan) != digest(2, plan)
