"""Per-kind behaviour of the fault engine on live testbeds."""

from repro.faults import FaultPlan, FaultSpec, install_faults
from repro.radio.cc2420 import CCA_THRESHOLD_DBM, NOISE_FLOOR_DBM
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def make_chain(n=3, seed=7):
    return build_chain(n, spacing=60.0, seed=seed,
                       propagation_kwargs=QUIET_PROPAGATION)


def install(tb, *specs, name="test"):
    return install_faults(tb, FaultPlan(name=name, specs=tuple(specs)))


def test_inert_plans_install_nothing():
    tb = make_chain()
    assert install_faults(tb, None) is None
    assert install_faults(tb, FaultPlan()) is None
    assert install_faults(tb, FaultPlan(enabled=False, specs=(
        FaultSpec(kind="node_crash", nodes=(2,)),))) is None
    assert tb.medium.faults is None
    assert tb.monitor.counter("faults.activations") == 0


def test_node_crash_window():
    tb = make_chain()
    injector = install(tb, FaultSpec(kind="node_crash", at=5.0,
                                     duration=10.0, nodes=(2,)))
    assert tb.medium.faults is injector
    tb.run(until=4.9)
    assert tb.node(2).is_up
    tb.run(until=6.0)
    assert not tb.node(2).is_up
    tb.run(until=15.5)
    assert tb.node(2).is_up
    assert injector.activations == {"node_crash": 1}
    assert tb.monitor.counter("faults.node_crash.activations") == 1
    assert tb.monitor.counter("faults.deactivations") == 1


def test_open_ended_crash_never_recovers():
    tb = make_chain()
    install(tb, FaultSpec(kind="node_crash", at=1.0, nodes=(3,)))
    tb.run(until=60.0)
    assert not tb.node(3).is_up


def test_node_reboot_clears_kernel_state():
    tb = make_chain()
    install(tb, FaultSpec(kind="node_reboot", at=10.0, nodes=(2,)))
    tb.run(until=9.9)
    assert tb.node(2).neighbors.lookup(1) is not None
    tb.run(until=10.5)
    assert not tb.node(2).is_up
    tb.run(until=11.001)  # default 1 s downtime elapsed
    node = tb.node(2)
    assert node.is_up
    assert node.neighbors.lookup(1) is None  # stale table gone
    tb.run(until=25.0)
    assert node.neighbors.lookup(1) is not None  # beacons repopulate


def test_link_degrade_applies_both_directions_and_clears():
    tb = make_chain()
    install(tb, FaultSpec(kind="link_degrade", at=2.0, duration=5.0,
                          link=(1, 2), loss_db=50.0))
    prop = tb.propagation
    tb.run(until=3.0)
    assert prop.link_penalty_db(1, 2) == 50.0
    assert prop.link_penalty_db(2, 1) == 50.0
    tb.run(until=8.0)
    assert prop.link_penalty_db(1, 2) == 0.0
    assert prop.link_penalty_db(2, 1) == 0.0


def test_link_degrade_directed_leaves_reverse_untouched():
    tb = make_chain()
    install(tb, FaultSpec(kind="link_degrade", at=1.0, link=(1, 2),
                          loss_db=30.0, directed=True))
    tb.run(until=2.0)
    assert tb.propagation.link_penalty_db(1, 2) == 30.0
    assert tb.propagation.link_penalty_db(2, 1) == 0.0


def test_link_degrade_ramp_climbs_in_steps():
    tb = make_chain()
    install(tb, FaultSpec(kind="link_degrade", at=2.0, duration=20.0,
                          link=(2, 3), loss_db=40.0, ramp_s=4.0))
    prop = tb.propagation
    tb.run(until=2.0)
    assert prop.link_penalty_db(2, 3) == 0.0  # ramp starts after `at`
    tb.run(until=4.1)  # halfway up the ramp
    halfway = prop.link_penalty_db(2, 3)
    assert 0.0 < halfway < 40.0
    tb.run(until=6.1)  # ramp complete
    full = prop.link_penalty_db(2, 3)
    assert abs(full - 40.0) < 1e-9
    tb.run(until=23.0)
    assert prop.link_penalty_db(2, 3) == 0.0


def test_link_degrade_breaks_delivery_while_active():
    tb = make_chain(2)
    install(tb, FaultSpec(kind="link_degrade", at=5.0, duration=20.0,
                          link=(1, 2), loss_db=90.0))
    tb.run(until=5.0)
    assert tb.node(2).neighbors.lookup(1) is not None
    tb.run(until=25.0)  # entries expire: nothing crosses a +90 dB link
    assert tb.node(2).neighbors.lookup(1) is None
    tb.run(until=45.0)  # link healed: beacons return
    assert tb.node(2).neighbors.lookup(1) is not None


def test_interference_burst_raises_floor_and_jams_cca():
    tb = make_chain()
    injector = install(tb, FaultSpec(kind="interference_burst", at=1.0,
                                     duration=3.0, channel=17,
                                     loss_db=30.0))
    xcvr = tb.node(1).xcvr
    tb.run(until=2.0)
    assert injector.noise_offset_dbm(17) == 30.0
    assert injector.noise_offset_dbm(18) == 0.0
    assert NOISE_FLOOR_DBM + 30.0 >= CCA_THRESHOLD_DBM  # premise
    assert tb.medium.cca_busy(xcvr)
    assert tb.medium.ambient_power_dbm(xcvr) >= NOISE_FLOOR_DBM + 30.0
    tb.run(until=5.0)
    assert injector.noise_offset_dbm(17) == 0.0
    assert not tb.medium.cca_busy(xcvr)


def test_packet_corrupt_everywhere_starves_neighbor_tables():
    tb = make_chain()
    install(tb, FaultSpec(kind="packet_corrupt", at=0.0, probability=1.0))
    tb.run(until=20.0)
    assert tb.monitor.counter("medium.corrupted_frames") > 0
    # Every beacon arrives CRC-broken, so nobody learns any neighbor.
    for node in tb.nodes():
        assert node.neighbors.entries() == []


def test_packet_corrupt_scoped_to_one_receiver():
    tb = make_chain()
    install(tb, FaultSpec(kind="packet_corrupt", at=0.0, probability=1.0,
                          nodes=(2,)))
    tb.run(until=20.0)
    assert tb.node(2).neighbors.entries() == []       # deaf to clean data
    assert tb.node(1).neighbors.lookup(2) is not None  # others unaffected


def test_packet_corrupt_window_ends():
    tb = make_chain(2)
    install(tb, FaultSpec(kind="packet_corrupt", at=0.0, duration=10.0,
                          probability=1.0))
    tb.run(until=10.0)
    assert tb.node(2).neighbors.entries() == []
    tb.run(until=30.0)
    assert tb.node(2).neighbors.lookup(1) is not None


def test_queue_saturate_clamps_then_restores():
    tb = make_chain()
    install(tb, FaultSpec(kind="queue_saturate", at=1.0, duration=4.0,
                          nodes=(2,), capacity=1))
    queue = tb.node(2).mac.queue
    original = queue.capacity
    assert original > 1
    tb.run(until=2.0)
    assert queue.capacity == 1
    tb.run(until=6.0)
    assert queue.capacity == original


def test_clock_drift_skews_beacon_rate():
    tb = make_chain()
    install(tb, FaultSpec(kind="clock_drift", at=0.0, duration=30.0,
                          nodes=(2,), drift=1.0))  # clock runs 2x fast
    tb.run(until=10.0)
    node = tb.node(2)
    assert node.clock_rate == 2.0
    assert node.local_time() > tb.env.now * 1.5
    tb.run(until=31.0)
    assert node.clock_rate == 1.0
    # A 2x clock emits beacons roughly twice as often while drifting.
    fast = sum(1 for r in tb.monitor.packets
               if r.sender == 2 and r.time < 30.0)
    steady = sum(1 for r in tb.monitor.packets
                 if r.sender == 1 and r.time < 30.0)
    assert fast > steady * 1.5


def test_activation_edges_are_traced():
    tb = make_chain()
    tb.tracer.enable()
    install(tb, FaultSpec(kind="node_crash", at=2.0, duration=3.0,
                          nodes=(2,)))
    tb.run(until=10.0)
    kinds = [e.kind for e in tb.tracer.events
             if e.kind.startswith("fault.")]
    assert kinds == ["fault.activate", "fault.deactivate"]
