"""Tests for topology generators and canned scenarios."""

import math

import pytest

from repro.sim import RngRegistry
from repro.workloads import (
    build_chain,
    build_grid,
    build_random_field,
    chain_positions,
    eight_hop_chain,
    grid_positions,
    ip_names,
    random_disk_positions,
    thirty_node_field,
)


def test_chain_positions_spacing():
    positions = chain_positions(4, spacing=10.0)
    assert positions == [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]


def test_chain_needs_a_node():
    with pytest.raises(ValueError):
        chain_positions(0)


def test_grid_positions_count_and_shape():
    positions = grid_positions(3, 4, spacing=5.0)
    assert len(positions) == 12
    assert positions[0] == (0.0, 0.0)
    assert positions[-1] == (15.0, 10.0)


def test_grid_jitter_requires_rng():
    with pytest.raises(ValueError):
        grid_positions(2, 2, jitter=1.0)


def test_grid_jitter_bounded():
    rng = RngRegistry(3)
    positions = grid_positions(3, 3, spacing=10.0, jitter=2.0, rng=rng)
    for (x, y), (gx, gy) in zip(positions, grid_positions(3, 3, 10.0)):
        assert abs(x - gx) <= 2.0 and abs(y - gy) <= 2.0


def test_random_disk_respects_radius_and_separation():
    rng = RngRegistry(5)
    positions = random_disk_positions(20, radius=100.0, rng=rng,
                                      min_separation=10.0)
    assert len(positions) == 20
    for x, y in positions:
        assert math.hypot(x, y) <= 100.0 + 1e-9
    for i, a in enumerate(positions):
        for b in positions[i + 1:]:
            assert math.hypot(a[0] - b[0], a[1] - b[1]) >= 10.0


def test_random_disk_impossible_raises():
    rng = RngRegistry(5)
    with pytest.raises(RuntimeError):
        random_disk_positions(100, radius=10.0, rng=rng,
                              min_separation=50.0, max_tries=500)


def test_ip_names_convention():
    assert ip_names(3) == ["192.168.0.1", "192.168.0.2", "192.168.0.3"]


def test_build_chain_registers_names():
    tb = build_chain(3, seed=1)
    assert tb.namespace.names() == ip_names(3)
    assert len(tb) == 3


def test_build_grid_and_random_field():
    assert len(build_grid(2, 3, seed=1)) == 6
    assert len(build_random_field(8, radius=200.0, seed=1)) == 8


def test_eight_hop_chain_scenario():
    tb = eight_hop_chain(seed=1)
    assert len(tb) == 9  # 8 hops in diameter
    assert "192.168.0.9" in tb


def test_thirty_node_field_scenario():
    """'a testbed composed of thirty MicaZ nodes'."""
    tb = thirty_node_field(seed=1)
    assert len(tb) == 30


def test_scenarios_deterministic():
    a = thirty_node_field(seed=4).node(7).position
    b = thirty_node_field(seed=4).node(7).position
    assert a == b
