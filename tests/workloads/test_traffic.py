"""Tests for the background traffic generator."""

import pytest

from repro.net import GeographicForwarding
from repro.workloads import Flow, TrafficGenerator, build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def make_testbed(n=4):
    tb = build_chain(n, seed=3, propagation_kwargs=QUIET_PROPAGATION)
    tb.install_protocol_everywhere(GeographicForwarding)
    return tb


def test_flow_validation():
    with pytest.raises(ValueError):
        Flow(src=1, dst=2, interval=0)
    with pytest.raises(ValueError):
        Flow(src=1, dst=2, payload_bytes=100)


def test_traffic_flows_deliver():
    tb = make_testbed(4)
    tb.warm_up(10.0)
    gen = TrafficGenerator(tb, [Flow(src=1, dst=4, interval=0.5)])
    gen.start()
    tb.warm_up(10.0)
    assert gen.sent >= 15
    assert gen.delivered >= 10
    assert 0.5 <= gen.delivery_ratio <= 1.0


def test_traffic_stop_halts_flows():
    tb = make_testbed(3)
    tb.warm_up(10.0)
    gen = TrafficGenerator(tb, [Flow(src=1, dst=3, interval=0.2)])
    gen.start()
    tb.warm_up(5.0)
    gen.stop()
    sent_at_stop = gen.sent
    tb.warm_up(5.0)
    assert gen.sent == sent_at_stop


def test_start_is_idempotent():
    tb = make_testbed(3)
    gen = TrafficGenerator(tb, [Flow(src=1, dst=3, interval=0.5)])
    gen.start()
    gen.start()
    tb.warm_up(12.0)
    # Roughly one packet per interval — not doubled.
    assert gen.sent <= 30


def test_multiple_flows_share_segments():
    tb = make_testbed(5)
    tb.warm_up(10.0)
    gen = TrafficGenerator(tb, [
        Flow(src=1, dst=5, interval=0.4),
        Flow(src=2, dst=5, interval=0.4),
    ])
    gen.start()
    tb.warm_up(8.0)
    assert gen.delivered > 0
    assert tb.monitor.counter("traffic.sent") == gen.sent
