"""Tests for canned scenarios and the CLI topology builder."""

import pytest

from repro.analysis import prr_matrix
from repro.workloads import corridor_chain, eight_hop_chain, hundred_node_field


def test_corridor_chain_pins_adjacency():
    """Walls make non-adjacent links unusable while adjacent links stay
    strong at both Figure 6 power levels."""
    tb = corridor_chain(5, seed=2)
    prr_full = prr_matrix(tb, frame_bytes=50, power_level=31)
    prr_low = prr_matrix(tb, frame_bytes=50, power_level=10)
    for i in range(4):
        assert prr_full[i, i + 1] > 0.9
        assert prr_low[i, i + 1] > 0.5
    for i in range(3):
        assert prr_full[i, i + 2] < 0.3  # walls kill the shortcut


def test_corridor_chain_has_asymmetric_links():
    tb = corridor_chain(5, seed=2)
    diffs = [
        abs(tb.propagation.link_shadowing_db(i, i + 1)
            - tb.propagation.link_shadowing_db(i + 1, i))
        for i in range(1, 5)
    ]
    assert any(d > 0.5 for d in diffs)


def test_eight_hop_chain_is_genuinely_eight_hops():
    """Greedy routing over the chain takes ~8 hops, not shortcuts."""
    from repro.net import GeographicForwarding
    tb = eight_hop_chain(seed=2)
    tb.install_protocol_everywhere(GeographicForwarding)
    tb.warm_up(12.0)
    hops = 0
    current = 1
    while current != 9 and hops < 12:
        current = tb.node(current).protocol_on(10).route_next_hop(9)
        assert current is not None
        hops += 1
    assert hops == 8


def test_hundred_node_field_shape():
    """The benchmark-scale topology: 100 unique nodes spanning a grid."""
    tb = hundred_node_field(seed=4)
    assert len(tb) == 100
    ids = [node.id for node in tb.nodes()]
    assert len(set(ids)) == 100
    xs = [node.position[0] for node in tb.nodes()]
    ys = [node.position[1] for node in tb.nodes()]
    # A jittered 10x10 grid at 45 m spacing spans ~405 m, not a clump.
    assert max(xs) - min(xs) > 300
    assert max(ys) - min(ys) > 300


def test_cli_topology_builder():
    from repro.__main__ import build_testbed
    assert len(build_testbed("chain:4", seed=1)) == 4
    assert len(build_testbed("field", seed=1)) == 30
    with pytest.raises(SystemExit):
        build_testbed("bogus", seed=1)
