"""Fixtures for core-layer tests: deployed LiteView testbeds."""

import pytest

from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture
def chain_deployment():
    """Factory: an n-node chain with LiteView fully deployed."""

    def build(n_nodes=4, *, seed=2, spacing=60.0, warm_up=15.0, **kwargs):
        testbed = build_chain(
            n_nodes, spacing=spacing, seed=seed,
            propagation_kwargs=QUIET_PROPAGATION,
        )
        return deploy_liteview(testbed, warm_up=warm_up, **kwargs)

    return build
