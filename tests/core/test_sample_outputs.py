"""E1/E2: reproduce the paper's sample shell sessions structurally.

The absolute RTT/LQI/RSSI numbers depend on the testbed geometry (which
the paper does not give), but every *field* of the §III-B.3 ping output
and §III-B.4 traceroute output must appear, with plausible values in the
right ranges, under the same commands the paper types.
"""

import re

import pytest

from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture(scope="module")
def paper_session():
    testbed = build_chain(4, spacing=60.0, seed=2,
                          propagation_kwargs=QUIET_PROPAGATION)
    dep = deploy_liteview(testbed, warm_up=15.0)
    dep.login("192.168.0.1")
    return dep


def test_pwd_sample(paper_session):
    assert paper_session.run("pwd") == "/sn01/192.168.0.1"


def test_ping_sample_output_fields(paper_session):
    out = paper_session.run("ping 192.168.0.2 round=1 length=32")
    assert out.splitlines()[0] == (
        "Pinging 192.168.0.2 with 1 packets with 32 bytes:"
    )
    match = re.search(
        r"RTT = (\d+\.\d) ms, LQI = (\d+)/(\d+), "
        r"RSSI = (-?\d+)/(-?\d+), Queue = (\d+)/(\d+)", out,
    )
    assert match, out
    rtt = float(match.group(1))
    lqi_f, lqi_b = int(match.group(2)), int(match.group(3))
    rssi_f, rssi_b = int(match.group(4)), int(match.group(5))
    # Plausibility windows around the paper's values (RTT = 4.7 ms,
    # LQI = 108/106, RSSI register readings, empty queues).
    assert 1.0 <= rtt <= 20.0
    assert 50 <= lqi_f <= 110 and 50 <= lqi_b <= 110
    assert -90 <= rssi_f <= 10 and -90 <= rssi_b <= 10
    assert "Power = 31, Channel = 17" in out
    assert "Ping statistics:" in out
    assert "Packets = 1" in out
    assert "Received = 1" in out
    assert "Lost = 0" in out


def test_traceroute_sample_output_fields(paper_session):
    out = paper_session.run(
        "traceroute 192.168.0.3 round=1 length=32 port=10"
    )
    lines = out.splitlines()
    assert lines[0] == "Reaching 192.168.0.3 with 1 packets with 32 bytes:"
    assert lines[1] == "Name of protocol: geographic forwarding"
    assert "Reply from 192.168.0.2" in out
    assert "Reply from 192.168.0.3" in out
    # Per-hop lines carry the full observable tuple.
    hop_lines = [l for l in lines if l.startswith("RTT = ")]
    assert len(hop_lines) == 2
    for line in hop_lines:
        assert re.match(
            r"RTT = \d+\.\d ms, LQI = \d+/\d+, "
            r"RSSI = -?\d+/-?\d+, Queue = \d+/\d+", line,
        )
    assert "Traceroute statistics:" in out
    assert "Packets = 1" in out
    assert "Received = 1" in out
    assert "Lost = 0" in out


def test_full_session_renders_like_the_paper(paper_session):
    text = paper_session.interpreter.session([
        "pwd",
        "ping 192.168.0.2 round=1 length=32",
    ])
    assert text.startswith("$ pwd\n/sn01/192.168.0.1\n$ ping")
