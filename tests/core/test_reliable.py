"""Tests for the reliable one-hop exchange protocol (§IV-B)."""

import pytest

from repro.core.reliable import CHUNK_BYTES, MAX_CHUNKS, ReliableEndpoint
from repro.errors import ReliableTransferError
from repro.kernel import Testbed

QUIET = {"shadowing_sigma_db": 0.0, "fading_sigma_db": 0.0}


def make_pair(distance=10.0, seed=5, endpoint_kwargs=None, **prop):
    kwargs = dict(QUIET)
    kwargs.update(prop)
    tb = Testbed(seed=seed, propagation_kwargs=kwargs)
    a = tb.add_node("a", (0.0, 0.0))
    b = tb.add_node("b", (distance, 0.0))
    inbox_a, inbox_b = [], []
    ep_a = ReliableEndpoint(a, lambda o, m: inbox_a.append((o, m)),
                            **(endpoint_kwargs or {}))
    ep_b = ReliableEndpoint(b, lambda o, m: inbox_b.append((o, m)))
    return tb, (a, ep_a, inbox_a), (b, ep_b, inbox_b)


def deliver(tb, ep, dest, payload):
    proc = tb.env.process(ep.send(dest, payload))
    return tb.env.run(until=proc)


def test_single_packet_message(capfd=None):
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair()
    assert deliver(tb, ep_a, b.id, b"hello")
    assert inbox_b == [(a.id, b"hello")]


def test_multi_chunk_message():
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair()
    payload = bytes(range(256)) * 3  # 768 B -> 14 chunks
    assert deliver(tb, ep_a, b.id, payload)
    assert inbox_b == [(a.id, payload)]


def test_chunking_boundary_exact_multiple():
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair()
    payload = b"z" * (CHUNK_BYTES * 3)
    assert deliver(tb, ep_a, b.id, payload)
    assert inbox_b[0][1] == payload


def test_bidirectional_conversation():
    tb, (a, ep_a, inbox_a), (b, ep_b, inbox_b) = make_pair()
    assert deliver(tb, ep_a, b.id, b"request")
    assert deliver(tb, ep_b, a.id, b"response")
    assert inbox_b == [(a.id, b"request")]
    assert inbox_a == [(b.id, b"response")]


def test_empty_message_rejected():
    tb, (_a, ep_a, _), (b, _, _) = make_pair()
    with pytest.raises(ValueError):
        list(ep_a.send(b.id, b""))


def test_oversize_message_rejected():
    tb, (_a, ep_a, _), (b, _, _) = make_pair()
    with pytest.raises(ValueError):
        list(ep_a.send(b.id, b"x" * (MAX_CHUNKS * CHUNK_BYTES + 1)))


def test_send_to_unreachable_peer_fails_cleanly():
    tb = Testbed(seed=5, propagation_kwargs=QUIET)
    a = tb.add_node("a", (0.0, 0.0))
    b = tb.add_node("b", (5000.0, 0.0))  # far out of range
    ep_a = ReliableEndpoint(a, lambda o, m: None)
    ReliableEndpoint(b, lambda o, m: None)
    proc = tb.env.process(ep_a.send(b.id, b"void"))
    with pytest.raises(ReliableTransferError) as excinfo:
        tb.env.run(until=proc)
    assert excinfo.value.dest == b.id
    assert excinfo.value.attempts == ep_a.max_attempts
    assert excinfo.value.pending == excinfo.value.total == 1
    assert tb.monitor.counter("reliable.aborts") == 1


def test_lossy_link_still_delivers():
    """Retransmissions must push a large message through a gray link.

    The retry budget is raised above the default: a 93 m link aborts
    within 10 consecutive stalls for a fair share of seeds (by design —
    the budget is what bounds a dead-peer wait), and this test is about
    eventual delivery, not the budget.
    """
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair(
        distance=93.0, seed=3, endpoint_kwargs={"max_attempts": 30})
    payload = bytes(400)
    assert deliver(tb, ep_a, b.id, payload)
    assert inbox_b == [(a.id, payload)]
    # The link was genuinely lossy: retransmissions happened.
    assert (tb.monitor.counter("reliable.data_sent")
            > -(-len(payload) // CHUNK_BYTES))


def test_total_loss_mid_transfer_raises_within_budget():
    """100% loss mid-transfer ends in ReliableTransferError, not a hang."""
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair()
    payload = bytes(800)  # multi-chunk: the transfer is in flight a while
    tb.env.call_at(0.01, b.fail)  # link goes totally dark mid-transfer
    proc = tb.env.process(ep_a.send(b.id, payload))
    with pytest.raises(ReliableTransferError) as excinfo:
        tb.env.run(until=proc)
    err = excinfo.value
    assert err.attempts == ep_a.max_attempts
    assert 0 < err.pending <= err.total
    assert inbox_b == []  # never completed, never delivered
    # The wait is bounded: every attempt's deadline is capped, so the
    # whole abort happens within budget * (capped deadline) plus slack.
    worst = ep_a.ack_timeout + 0.003 * ep_a.max_batch
    assert tb.env.now <= 0.01 + ep_a.max_attempts * worst * (
        ep_a.backoff_cap * 1.25) + 1.0


def test_backoff_delays_monotone_and_capped():
    """Consecutive stall deadlines never shrink and respect the cap."""
    tb = Testbed(seed=11, propagation_kwargs=QUIET)
    a = tb.add_node("a", (0.0, 0.0))
    b = tb.add_node("b", (5000.0, 0.0))  # unreachable: every attempt stalls
    ep_a = ReliableEndpoint(a, lambda o, m: None)
    ReliableEndpoint(b, lambda o, m: None)
    proc = tb.env.process(ep_a.send(b.id, b"probe"))
    with pytest.raises(ReliableTransferError) as excinfo:
        tb.env.run(until=proc)
    delays = excinfo.value.backoff_delays
    assert len(delays) == ep_a.max_attempts
    base = ep_a.ack_timeout + 0.003  # single-chunk first batch
    assert delays[0] == pytest.approx(base)
    for earlier, later in zip(delays, delays[1:]):
        assert later >= earlier
    assert max(delays) <= base * ep_a.backoff_cap * 1.25


def test_backoff_engages_only_after_a_timeout():
    """A clean transfer never consults the jitter stream (golden safety)."""
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair()
    assert deliver(tb, ep_a, b.id, b"clean")
    assert inbox_b == [(a.id, b"clean")]
    assert ep_a._backoff_rng is None
    assert tb.monitor.counter("reliable.ack_timeouts") == 0


def test_batch_size_shrinks_on_loss_and_grows_when_clean():
    tb, (a, ep_a, _), (b, _, _) = make_pair(distance=92.0, seed=3)
    start = ep_a.batch_size(b.id)
    deliver(tb, ep_a, b.id, bytes(800))
    lossy_batch = ep_a.batch_size(b.id)
    # On a gray link the steady-state batch should not exceed the start.
    assert lossy_batch <= start

    tb2, (a2, ep2, _), (b2, _, _) = make_pair(distance=5.0)
    deliver(tb2, ep2, b2.id, bytes(800))
    assert ep2.batch_size(b2.id) > ep2.min_batch


def test_duplicate_suppression():
    """A retransmitted completed transfer must not deliver twice."""
    tb, (a, ep_a, _), (b, _, inbox_b) = make_pair(distance=80.0, seed=9)
    for i in range(5):
        deliver(tb, ep_a, b.id, bytes([i]) * 10)
    messages = [m for _o, m in inbox_b]
    assert len(messages) == len(set(messages)) == 5


def test_constructor_validation():
    tb = Testbed(seed=1)
    node = tb.add_node("a", (0, 0))
    with pytest.raises(ValueError):
        ReliableEndpoint(node, lambda o, m: None, min_batch=0)
    with pytest.raises(ValueError):
        ReliableEndpoint(node, lambda o, m: None, initial_batch=99)


def test_concurrent_transfers_to_two_peers():
    tb = Testbed(seed=5, propagation_kwargs=QUIET)
    hub = tb.add_node("hub", (0.0, 0.0))
    left = tb.add_node("left", (10.0, 0.0))
    right = tb.add_node("right", (0.0, 10.0))
    inbox_l, inbox_r = [], []
    ep_hub = ReliableEndpoint(hub, lambda o, m: None)
    ReliableEndpoint(left, lambda o, m: inbox_l.append(m))
    ReliableEndpoint(right, lambda o, m: inbox_r.append(m))
    p1 = tb.env.process(ep_hub.send(left.id, b"L" * 150))
    p2 = tb.env.process(ep_hub.send(right.id, b"R" * 150))
    tb.env.run(until=tb.env.all_of([p1, p2]))
    assert inbox_l == [b"L" * 150]
    assert inbox_r == [b"R" * 150]
