"""Tests for the traceroute command (Figure 4)."""

import pytest

from repro.errors import ParameterError


def run_traceroute(dep, src, target, **kwargs):
    tb = dep.testbed
    service = dep.traceroute_services[tb.namespace.resolve(src)]
    proc = tb.env.process(
        service.traceroute(tb.namespace.resolve(target), **kwargs)
    )
    return tb.env.run(until=proc)


def test_single_hop_traceroute(chain_deployment):
    dep = chain_deployment(2)
    result = run_traceroute(dep, 1, 2)
    assert result.reached_target
    assert result.hop_count == 1
    [hop] = result.hops
    assert hop.probed_node_id == 2
    assert 0 < hop.rtt_ms < 50


def test_multi_hop_reports_per_hop(chain_deployment):
    dep = chain_deployment(5, seed=4)
    result = run_traceroute(dep, 1, 5)
    assert result.reached_target
    hops = {h.hop_index: h.probed_node_id for h in result.hops}
    # Hop k probes node k+1 along the chain.
    for hop_index, probed in hops.items():
        assert probed == hop_index + 1
    assert result.hop_count == 4


def test_rtt_is_per_hop_not_cumulative(chain_deployment):
    """'the RTT values reported here are for individual hops rather than
    for end-to-end paths'."""
    dep = chain_deployment(5, seed=4)
    result = run_traceroute(dep, 1, 5)
    assert result.reached_target
    # Every hop's RTT is a one-hop exchange: small and similar, not
    # growing with the hop index.
    for hop in result.hops:
        assert hop.rtt_ms < 50


def test_arrival_times_grow_with_depth(chain_deployment):
    """Figure 5's qualitative shape: deeper hops' reports arrive later
    on the whole (report jitter allows local inversions)."""
    dep = chain_deployment(6, seed=4)
    result = run_traceroute(dep, 1, 6)
    series = result.arrival_series_ms()
    assert len(series) >= 4
    first_hop = series[0]
    last_hop = series[-1]
    assert first_hop[1] < last_hop[1]


def test_report_arrival_carries_link_pairs(chain_deployment):
    dep = chain_deployment(3)
    result = run_traceroute(dep, 1, 3)
    for hop in result.hops:
        assert 50 <= hop.link.lqi_forward <= 110
        assert 50 <= hop.link.lqi_backward <= 110
        assert -128 <= hop.link.rssi_forward <= 127


def test_unreachable_target(chain_deployment):
    dep = chain_deployment(3)
    tb = dep.testbed
    tb.add_node("island", (9000.0, 0.0), node_id=50)
    result = run_traceroute(dep, 1, 50, timeout=1.0)
    assert not result.reached_target
    assert result.lost == 1


def test_stuck_greedy_counts(chain_deployment):
    dep = chain_deployment(3)
    tb = dep.testbed
    # Blacklist every next hop at node 1: the task is stuck immediately.
    tb.node(1).neighbors.blacklist(2)
    tb.node(1).neighbors.blacklist(3)
    result = run_traceroute(dep, 1, 3, timeout=1.0)
    assert not result.reached_target
    assert tb.monitor.counter("traceroute.stuck") >= 1


def test_multiple_rounds_accumulate(chain_deployment):
    dep = chain_deployment(3, seed=6)
    result = run_traceroute(dep, 1, 3, rounds=3)
    assert result.sent == 3
    assert result.received >= 2
    # Several rounds produce several reports per hop index.
    hop1 = [h for h in result.hops if h.hop_index == 1]
    assert len(hop1) >= 2


def test_parameter_validation(chain_deployment):
    dep = chain_deployment(2)
    service = dep.traceroute_services[1]
    with pytest.raises(ParameterError):
        next(service.traceroute(2, rounds=0))
    with pytest.raises(ParameterError):
        next(service.traceroute(2, length=100))
    with pytest.raises(ParameterError):
        next(service.traceroute(2, routing_port=77))


def test_traceroute_more_scalable_than_multihop_ping(chain_deployment):
    """§III-B.4: traceroute never pads, so its packets stay small while
    multi-hop ping packets grow per hop."""
    dep = chain_deployment(6, seed=4)
    tb = dep.testbed
    n0 = len(tb.monitor.packets)
    run_traceroute(dep, 1, 6)
    probe_sizes = sorted({r.size_bytes for r in tb.monitor.packets[n0:]
                          if r.kind == "traceroute" and r.size_bytes > 50})
    # All traceroute probes are the same fixed size: no padding growth.
    assert len(probe_sizes) == 1
    n1 = len(tb.monitor.packets)
    service = dep.ping_services[1]
    proc = tb.env.process(service.ping(6, routing_port=10, length=16))
    tb.env.run(until=proc)
    # The padded ping probe grows 2 bytes per hop as it travels
    # (first hop is labelled 'ping', forwarded hops 'geographic').
    ping_sizes = [r.size_bytes for r in tb.monitor.packets[n1:]
                  if r.kind in ("ping", "geographic")]
    assert ping_sizes, "multi-hop ping must transmit"
    assert max(ping_sizes) - min(ping_sizes) >= 2 * 3
