"""Property tests for result serialisation (controller replies)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.results import (
    LinkObservation,
    NeighborView,
    PingResult,
    PingRound,
    TracerouteHop,
    TracerouteResult,
)
from repro.core.serialize import (
    decode_neighbor_views,
    decode_ping_result,
    decode_trace_result,
    encode_neighbor_views,
    encode_ping_result,
    encode_trace_result,
)
from repro.errors import HeaderError

links = st.builds(
    LinkObservation,
    lqi_forward=st.integers(0, 255), lqi_backward=st.integers(0, 255),
    rssi_forward=st.integers(-128, 127), rssi_backward=st.integers(-128, 127),
    queue_remote=st.integers(0, 255), queue_local=st.integers(0, 255),
)

paths = st.lists(
    st.tuples(st.integers(0, 255), st.integers(-128, 127)), max_size=6
).map(tuple)

ping_rounds = st.builds(
    PingRound,
    seq=st.integers(0, 255),
    rtt_ms=st.floats(0.0, 10_000.0),
    link=links,
    forward_path=paths,
    backward_path=paths,
)

ping_results = st.builds(
    PingResult,
    target_name=st.just("x"),
    target_id=st.integers(0, 0xFFFF),
    requested_rounds=st.integers(1, 255),
    probe_length=st.integers(0, 64),
    power_level=st.integers(0, 31),
    channel=st.integers(11, 26),
    rounds=st.lists(ping_rounds, max_size=5),
    sent=st.integers(0, 255),
)


@given(ping_results)
def test_ping_result_roundtrip(result):
    decoded = decode_ping_result(encode_ping_result(result))
    assert decoded.target_id == result.target_id
    assert decoded.requested_rounds == result.requested_rounds
    assert decoded.probe_length == result.probe_length
    assert decoded.power_level == result.power_level
    assert decoded.channel == result.channel
    assert decoded.sent == result.sent
    assert len(decoded.rounds) == len(result.rounds)
    for got, want in zip(decoded.rounds, result.rounds):
        assert got.seq == want.seq
        assert got.rtt_ms == pytest.approx(want.rtt_ms, abs=0.001)
        assert got.link == want.link
        assert got.forward_path == want.forward_path
        assert got.backward_path == want.backward_path


trace_hops = st.builds(
    TracerouteHop,
    hop_index=st.integers(0, 255),
    probed_node_id=st.integers(0, 0xFFFF),
    probed_node_name=st.just("x"),
    rtt_ms=st.floats(0.0, 10_000.0),
    link=links,
    arrival_ms=st.floats(0.0, 100_000.0),
)

trace_results = st.builds(
    TracerouteResult,
    target_name=st.just("x"),
    target_id=st.integers(0, 0xFFFF),
    requested_rounds=st.integers(1, 255),
    probe_length=st.integers(0, 64),
    protocol_name=st.text(min_size=0, max_size=20),
    routing_port=st.integers(0, 255),
    hops=st.lists(trace_hops, max_size=5),
    sent=st.integers(0, 255),
)


@given(trace_results)
def test_trace_result_roundtrip(result):
    decoded = decode_trace_result(encode_trace_result(result))
    assert decoded.target_id == result.target_id
    assert decoded.routing_port == result.routing_port
    # The name may be truncated to <=32 UTF-8 bytes on the wire.
    assert result.protocol_name.startswith(decoded.protocol_name)
    assert len(decoded.protocol_name.encode("utf-8")) <= 32
    assert decoded.sent == result.sent
    assert len(decoded.hops) == len(result.hops)
    for got, want in zip(decoded.hops, result.hops):
        assert got.hop_index == want.hop_index
        assert got.probed_node_id == want.probed_node_id
        assert got.rtt_ms == pytest.approx(want.rtt_ms, abs=0.001)
        assert got.arrival_ms == pytest.approx(want.arrival_ms, abs=0.001)
        assert got.link == want.link


neighbor_views = st.lists(
    st.builds(
        NeighborView,
        node_id=st.integers(0, 0xFFFF),
        lqi=st.integers(0, 255),
        rssi=st.integers(-128, 127),
        prr_percent=st.integers(0, 100),
        enabled=st.booleans(),
    ),
    max_size=16,
)


@given(neighbor_views)
def test_neighbor_views_roundtrip(views):
    assert decode_neighbor_views(encode_neighbor_views(views)) == views


def test_decode_rejects_truncation():
    result = PingResult(
        target_name="x", target_id=1, requested_rounds=1, probe_length=32,
        power_level=31, channel=17, sent=1,
    )
    result.rounds.append(PingRound(
        seq=0, rtt_ms=1.0,
        link=LinkObservation(1, 2, 3, 4, 5, 6),
    ))
    wire = encode_ping_result(result)
    with pytest.raises(HeaderError):
        decode_ping_result(wire[:-3])
    with pytest.raises(HeaderError):
        decode_trace_result(b"\x00")
    with pytest.raises(HeaderError):
        decode_neighbor_views(b"")


def test_names_resolved_through_namespace():
    from repro.kernel import Namespace
    ns = Namespace()
    ns.register(7, "192.168.0.7")
    result = PingResult(
        target_name="?", target_id=7, requested_rounds=1, probe_length=32,
        power_level=31, channel=17, sent=0,
    )
    decoded = decode_ping_result(encode_ping_result(result), ns)
    assert decoded.target_name == "192.168.0.7"
