"""Tests for the runtime controller and the workstation request path."""

import struct

import pytest

from repro.core.serialize import decode_neighbor_views, decode_ping_result
from repro.core.wire import MsgType
from repro.errors import CommandTimeout


def test_get_radio_roundtrip(chain_deployment):
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, MsgType.GET_RADIO)
    assert reply.ok
    assert reply.body == bytes([31, 17])


def test_set_power_applies_on_node(chain_deployment):
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, MsgType.SET_POWER, bytes([10]))
    assert reply.ok
    assert reply.body[0] == 10
    assert dep.testbed.node(1).radio.power_level == 10


def test_set_power_invalid_returns_error(chain_deployment):
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, MsgType.SET_POWER, bytes([99]))
    assert not reply.ok
    assert dep.testbed.node(1).radio.power_level == 31


def test_response_window_is_respected(chain_deployment):
    """E3: one-hop management commands take the full 500 ms window."""
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, MsgType.GET_RADIO, window=0.5)
    assert reply.elapsed == pytest.approx(0.5, abs=0.01)


def test_early_return_when_window_not_forced(chain_deployment):
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, MsgType.GET_RADIO,
                                 wait_full_window=False)
    assert reply.elapsed < 0.5


def test_neighbor_list_via_controller(chain_deployment):
    dep = chain_deployment(3)
    reply = dep.workstation.call(1, MsgType.NEIGHBOR_LIST, b"\x01")
    assert reply.ok
    views = decode_neighbor_views(reply.body)
    assert any(v.node_id == 2 for v in views)


def test_blacklist_add_remove_via_controller(chain_deployment):
    dep = chain_deployment(3)
    node = dep.testbed.node(1)
    assert dep.workstation.call(
        1, MsgType.BLACKLIST_ADD, struct.pack(">H", 2)).ok
    assert node.neighbors.is_blacklisted(2)
    assert dep.workstation.call(
        1, MsgType.BLACKLIST_REMOVE, struct.pack(">H", 2)).ok
    assert not node.neighbors.is_blacklisted(2)


def test_set_beacon_interval_via_controller(chain_deployment):
    dep = chain_deployment(2)
    assert dep.workstation.call(
        1, MsgType.SET_BEACON, struct.pack(">I", 750)).ok
    assert dep.testbed.node(1).neighbors.beacon_interval == 0.75


def test_run_ping_remote_execution(chain_deployment):
    dep = chain_deployment(3)
    body = struct.pack(">HBBB", 2, 2, 32, 0)
    reply = dep.workstation.call(1, MsgType.RUN_PING, body,
                                 window=4.0, wait_full_window=False)
    assert reply.ok
    result = decode_ping_result(reply.body, dep.testbed.namespace)
    assert result.target_id == 2
    assert result.sent == 2
    assert result.received >= 1


def test_run_ping_uses_parameter_buffer(chain_deployment):
    """§IV-C.4: the controller stages the command's parameters in the
    kernel buffer; the command thread reads them back."""
    dep = chain_deployment(2)
    body = struct.pack(">HBBB", 2, 1, 16, 0)
    dep.workstation.call(1, MsgType.RUN_PING, body,
                         window=3.0, wait_full_window=False)
    staged = dep.testbed.node(1).params.read()
    assert staged == "2 round=1 length=16 port=0"


def test_unsupported_request_type(chain_deployment):
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, 0x5F)
    assert reply.status == 2  # UNSUPPORTED


def test_unreachable_node_times_out(chain_deployment):
    dep = chain_deployment(2)
    dep.testbed.add_node("far", (9999.0, 0.0), node_id=77)
    from repro.core.controller import install_controller
    install_controller(dep.testbed.node(77))
    with pytest.raises(CommandTimeout):
        dep.workstation.call(77, MsgType.GET_RADIO)


def test_response_backoff_randomizes_reply_time(chain_deployment):
    """Controllers back off before replying ('random waiting time before
    sending back replies')."""
    dep = chain_deployment(2)
    elapsed = []
    for _ in range(6):
        reply = dep.workstation.call(1, MsgType.GET_RADIO,
                                     wait_full_window=False)
        elapsed.append(round(reply.elapsed, 4))
    assert len(set(elapsed)) > 2  # backoff varies reply latency


def test_two_nodes_managed_in_turn(chain_deployment):
    dep = chain_deployment(3)
    assert dep.workstation.call(1, MsgType.GET_RADIO).ok
    dep.workstation.attach_near(2)
    assert dep.workstation.call(2, MsgType.GET_RADIO).ok
