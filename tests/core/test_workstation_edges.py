"""Edge cases for the workstation request path and the controller."""

import struct

import pytest

from repro.core.wire import MsgType


def test_group_call_waits_full_window(chain_deployment):
    dep = chain_deployment(3, spacing=30.0)
    tb = dep.testbed
    started = tb.env.now
    dep.workstation.group_call(MsgType.GET_RADIO, window=0.4)
    assert tb.env.now - started == pytest.approx(0.4, abs=0.01)


def test_group_replies_carry_elapsed(chain_deployment):
    dep = chain_deployment(3, spacing=30.0)
    dep.workstation.node.position = (30.0, -15.0)
    replies = dep.workstation.group_call(MsgType.GET_RADIO, window=0.5)
    assert replies
    for reply in replies.values():
        assert reply.elapsed == pytest.approx(0.5, abs=0.01)


def test_group_and_unicast_ids_do_not_collide(chain_deployment):
    """A unicast issued right after a group request must not have its
    reply swallowed by the (already closed) group collector."""
    dep = chain_deployment(3, spacing=30.0)
    dep.workstation.group_call(MsgType.GET_RADIO, window=0.4)
    reply = dep.workstation.call(1, MsgType.GET_RADIO)
    assert reply.ok


def test_controller_ignores_garbage(chain_deployment):
    """A malformed (too short) request is dropped and counted."""
    dep = chain_deployment(2)
    controller = dep.controllers[1]
    controller._on_request(99, b"\x20")  # type byte only, no request id
    assert dep.testbed.monitor.counter(
        "controller.malformed_requests") == 1


def test_controller_error_paths_report_status(chain_deployment):
    dep = chain_deployment(2)
    ws = dep.workstation
    # Truncated bodies for each parameterised request type.
    for msg in (MsgType.SET_POWER, MsgType.SET_CHANNEL,
                MsgType.BLACKLIST_ADD, MsgType.BLACKLIST_REMOVE,
                MsgType.SET_BEACON, MsgType.RUN_PING,
                MsgType.RUN_TRACEROUTE, MsgType.KILL_THREAD):
        reply = ws.call(1, msg, b"")
        assert not reply.ok, hex(msg)


def test_run_ping_on_node_without_ping_service(chain_deployment):
    dep = chain_deployment(2)
    tb = dep.testbed
    bare = tb.add_node("bare", (0.0, -30.0), node_id=40)
    from repro.core.controller import install_controller
    install_controller(bare)
    dep.workstation.attach_near(40)
    body = struct.pack(">HBBB", 1, 1, 16, 0)
    reply = dep.workstation.call(40, MsgType.RUN_PING, body,
                                 window=2.0, wait_full_window=False)
    assert not reply.ok
    assert b"not installed" in reply.body


def test_invalid_beacon_interval_over_the_air(chain_deployment):
    dep = chain_deployment(2)
    reply = dep.workstation.call(1, MsgType.SET_BEACON,
                                 struct.pack(">I", 0))
    assert not reply.ok
    # The node's configuration is untouched.
    assert dep.testbed.node(1).neighbors.beacon_interval == 2.0


def test_request_to_nonexistent_node_raises(chain_deployment):
    dep = chain_deployment(2)
    from repro.errors import NoSuchNode
    with pytest.raises(NoSuchNode):
        dep.workstation.call(999, MsgType.GET_RADIO)


def test_attach_near_moves_base_station(chain_deployment):
    dep = chain_deployment(3)
    dep.workstation.attach_near(3, offset=(1.0, -2.0))
    target = dep.testbed.node(3).position
    assert dep.workstation.node.position == (
        target[0] + 1.0, target[1] - 2.0)
