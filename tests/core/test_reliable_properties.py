"""Property tests for reliable-transfer reassembly.

These bypass the radio and feed RELIABLE_DATA packets directly into the
receive path in adversarial orders — duplicated, shuffled, interleaved
across transfers — asserting the receiver always reconstructs exactly
the original message, exactly once.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reliable import CHUNK_BYTES, ReliableEndpoint
from repro.core.wire import MsgType
from repro.kernel import Testbed
from repro.net import Packet

_DATA_FMT = ">BHBBB"


def make_endpoint():
    tb = Testbed(seed=1)
    node = tb.add_node("rx", (0, 0))
    inbox = []
    endpoint = ReliableEndpoint(node, lambda o, m: inbox.append((o, m)))
    return tb, node, endpoint, inbox


def data_packet(origin, xfer, index, total, chunk, ack_request=False):
    payload = struct.pack(
        _DATA_FMT, MsgType.RELIABLE_DATA, xfer, index, total,
        1 if ack_request else 0,
    ) + chunk
    return Packet(port=1, origin=origin, dest=1, payload=payload)


def feed(endpoint, packet):
    endpoint._on_packet(packet, None)


@given(
    payload=st.binary(min_size=1, max_size=4 * CHUNK_BYTES),
    order_seed=st.randoms(use_true_random=False),
    duplicates=st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def test_reassembly_under_shuffle_and_duplication(payload, order_seed,
                                                  duplicates):
    tb, node, endpoint, inbox = make_endpoint()
    chunks = [payload[i:i + CHUNK_BYTES]
              for i in range(0, len(payload), CHUNK_BYTES)]
    packets = [
        data_packet(7, 42, i, len(chunks), chunk)
        for i, chunk in enumerate(chunks)
    ]
    stream = list(packets)
    for _ in range(duplicates):
        stream.append(order_seed.choice(packets))
    order_seed.shuffle(stream)
    for packet in stream:
        feed(endpoint, packet)
    assert inbox == [(7, payload)]


@given(
    a=st.binary(min_size=1, max_size=2 * CHUNK_BYTES),
    b=st.binary(min_size=1, max_size=2 * CHUNK_BYTES),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_interleaved_transfers_do_not_mix(a, b, order_seed):
    tb, node, endpoint, inbox = make_endpoint()

    def packets_for(origin, xfer, payload):
        chunks = [payload[i:i + CHUNK_BYTES]
                  for i in range(0, len(payload), CHUNK_BYTES)]
        return [data_packet(origin, xfer, i, len(chunks), c)
                for i, c in enumerate(chunks)]

    stream = packets_for(7, 1, a) + packets_for(8, 1, b)
    order_seed.shuffle(stream)
    for packet in stream:
        feed(endpoint, packet)
    assert sorted(inbox) == sorted([(7, a), (8, b)])


def test_completed_transfer_not_redelivered_on_straggler():
    tb, node, endpoint, inbox = make_endpoint()
    chunk = b"x" * 10
    packet = data_packet(7, 5, 0, 1, chunk)
    feed(endpoint, packet)
    feed(endpoint, packet)  # straggler retransmission
    assert inbox == [(7, chunk)]


def test_impossible_indices_rejected():
    tb, node, endpoint, inbox = make_endpoint()
    feed(endpoint, data_packet(7, 5, 3, 2, b"x"))   # index >= total
    feed(endpoint, data_packet(7, 6, 0, 0, b"x"))   # total == 0
    feed(endpoint, data_packet(7, 7, 0, 40, b"x"))  # total > MAX_CHUNKS
    assert inbox == []
    assert node.monitor.counter("reliable.malformed") == 3


def test_partial_transfer_delivers_nothing():
    tb, node, endpoint, inbox = make_endpoint()
    feed(endpoint, data_packet(7, 5, 0, 3, b"a"))
    feed(endpoint, data_packet(7, 5, 2, 3, b"c"))
    assert inbox == []  # chunk 1 never arrived
