"""Shell tests for the observability commands: stats, trace, profile."""


def logged_in(chain_deployment, n=3, **kw):
    dep = chain_deployment(n, **kw)
    dep.login("192.168.0.1")
    return dep


# -- stats --------------------------------------------------------------------


def test_stats_dumps_registry(chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("ping 192.168.0.2 round=1 length=32")
    out = dep.run("stats")
    assert "counters:" in out
    assert "medium.transmissions" in out
    assert "histograms:" in out
    assert "ping.rtt_ms" in out


def test_stats_is_local_no_radio(chain_deployment):
    dep = logged_in(chain_deployment)
    before = dep.testbed.monitor.counter("medium.transmissions")
    dep.run("stats")
    assert dep.testbed.monitor.counter("medium.transmissions") == before


# -- trace --------------------------------------------------------------------


def test_trace_on_off_toggles_tracer(chain_deployment):
    dep = logged_in(chain_deployment)
    assert not dep.testbed.tracer.enabled
    assert "enabled" in dep.run("trace on")
    assert dep.testbed.tracer.enabled
    assert "disabled" in dep.run("trace off")
    assert not dep.testbed.tracer.enabled


def test_trace_last_without_tracing_hints_at_enabling(chain_deployment):
    dep = logged_in(chain_deployment)
    assert "trace on" in dep.run("trace last")


def test_trace_last_explains_most_recent_packet(chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("trace on")
    dep.run("ping 192.168.0.2 round=1 length=32")
    out = dep.run("trace last")
    assert out.startswith("packet ")
    assert "events" in out.splitlines()[0]
    # The most recent packet may still be mid-flight (e.g. in backoff),
    # but its story always starts with the send into the stack.
    assert "stack.send" in out


def test_trace_specific_packet_id(chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("trace on")
    dep.run("ping 192.168.0.2 round=1 length=32")
    tracer = dep.testbed.tracer
    packet_id = tracer.packet_ids()[0]
    assert f"packet {packet_id}:" in dep.run(f"trace {packet_id}")


def test_trace_unknown_id_reports_cleanly(chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("trace on")
    assert "no trace for packet" in dep.run("trace 9:9:9")


# -- profile ------------------------------------------------------------------


def test_profile_cycle(chain_deployment):
    dep = logged_in(chain_deployment)
    assert "never been attached" in dep.run("profile report")
    assert "attached" in dep.run("profile on")
    assert dep.testbed.env.profiler is not None
    dep.run("ping 192.168.0.2 round=1 length=32")
    report = dep.run("profile report")
    assert "dispatches" in report
    assert "process:" in report
    assert "detached" in dep.run("profile off")
    assert dep.testbed.env.profiler is None
    # The report survives detach: same data, still readable.
    assert "dispatches" in dep.run("profile report")


def test_profile_on_twice_keeps_one_profiler(chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("profile on")
    first = dep.testbed.env.profiler
    dep.run("profile on")
    assert dep.testbed.env.profiler is first


# -- help ---------------------------------------------------------------------


def test_help_lists_observability_commands(chain_deployment):
    dep = logged_in(chain_deployment)
    out = dep.run("help")
    for word in ("stats", "trace", "profile"):
        assert word in out
