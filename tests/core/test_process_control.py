"""Tests for process-level control: ps / kill through the shell.

"The commands supported by LiteView are executed as individual
processes" — and unlike SNMS-class tools that "only allow users to
modify variable state", the toolkit sees and controls threads.
"""

import pytest

from repro.errors import ParameterError


def logged_in(chain_deployment, n=3, **kw):
    dep = chain_deployment(n, **kw)
    dep.login("192.168.0.1")
    return dep


def test_ps_shows_itself_on_an_idle_node(chain_deployment):
    """Like real ps, the request that produces the listing is itself a
    live thread — an idle node shows exactly that one."""
    dep = logged_in(chain_deployment)
    out = dep.run("ps")
    lines = out.splitlines()
    assert lines[0].startswith("tid")
    assert len(lines) == 2
    assert "controller-request" in lines[1]


def test_ps_shows_running_command_thread(chain_deployment):
    """Start a long-running ping locally; `ps` on the node sees it."""
    dep = logged_in(chain_deployment)
    tb = dep.testbed
    service = dep.ping_services[1]
    tb.node(1).threads.spawn(
        "ping", service.ping(2, rounds=50, timeout=0.5)
    )
    out = dep.run("ps")
    assert "ping" in out
    assert out.splitlines()[0].startswith("tid")


def test_kill_stops_a_command_thread(chain_deployment):
    dep = logged_in(chain_deployment)
    tb = dep.testbed
    service = dep.ping_services[1]
    info = tb.node(1).threads.spawn(
        "ping", service.ping(2, rounds=200, timeout=0.5)
    )
    out = dep.run(f"kill {info.tid}")
    assert "killed" in out
    tb.warm_up(1.0)
    assert not info.alive
    assert "ping" not in dep.run("ps")
    # The kill is in the kernel event log.
    assert "thread.killed" in dep.run("events")


def test_kill_unknown_tid_errors(chain_deployment):
    dep = logged_in(chain_deployment)
    out = dep.run("kill 99")
    assert out.startswith("error:")


def test_kill_parameter_validation(chain_deployment):
    dep = logged_in(chain_deployment)
    with pytest.raises(ParameterError):
        dep.run("kill")
    with pytest.raises(ParameterError):
        dep.run("kill abc")


def test_killed_ping_reports_partial_result(chain_deployment):
    """Killing mid-command loses the command (its thread dies); the
    system stays healthy and subsequent commands work."""
    dep = logged_in(chain_deployment)
    tb = dep.testbed
    service = dep.ping_services[1]
    info = tb.node(1).threads.spawn(
        "ping", service.ping(2, rounds=100, timeout=0.5)
    )
    tb.warm_up(2.0)
    dep.run(f"kill {info.tid}")
    tb.warm_up(1.0)
    dep.run("ping 192.168.0.2 round=1")
    assert dep.interpreter.last_result.received == 1
