"""Tests for the shell-style command interpreter."""

import pytest

from repro.errors import ParameterError, UnknownCommand


def logged_in(chain_deployment, n=3, **kw):
    dep = chain_deployment(n, **kw)
    dep.login("192.168.0.1")
    return dep


def test_pwd_matches_paper_format(chain_deployment):
    dep = logged_in(chain_deployment)
    assert dep.run("pwd") == "/sn01/192.168.0.1"


def test_pwd_without_context(chain_deployment):
    dep = chain_deployment(2)
    assert dep.interpreter.execute("pwd") == "/sn01"


def test_pwd_is_local_no_radio(chain_deployment):
    """Context queries are answered by the interpreter 'without the need
    for contacting remote nodes'."""
    dep = logged_in(chain_deployment)
    before = dep.testbed.monitor.counter("medium.transmissions")
    dep.run("pwd")
    assert dep.testbed.monitor.counter("medium.transmissions") == before


def test_cd_changes_context(chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("cd 192.168.0.2")
    assert dep.run("pwd") == "/sn01/192.168.0.2"


def test_cd_unknown_node_reports_error(chain_deployment):
    dep = logged_in(chain_deployment)
    assert "error" in dep.run("cd nonsuch")


def test_ls_lists_names(chain_deployment):
    dep = logged_in(chain_deployment)
    listing = dep.run("ls")
    assert "192.168.0.1" in listing and "192.168.0.2" in listing


def test_ping_via_shell(chain_deployment):
    dep = logged_in(chain_deployment)
    out = dep.run("ping 192.168.0.2 round=1 length=32")
    assert "Pinging 192.168.0.2 with 1 packets with 32 bytes:" in out
    assert "RTT = " in out and "LQI = " in out
    assert "Power = 31, Channel = 17" in out
    assert "Received = 1" in out


def test_traceroute_via_shell(chain_deployment):
    dep = logged_in(chain_deployment, 4, seed=4)
    out = dep.run("traceroute 192.168.0.4 round=1 length=32 port=10")
    assert "Reaching 192.168.0.4 with 1 packets" in out
    assert "Name of protocol: geographic forwarding" in out
    assert "Reply from 192.168.0.2" in out


def test_power_get_and_set(chain_deployment):
    dep = logged_in(chain_deployment)
    assert dep.run("power") == "Power = 31, Channel = 17"
    assert dep.run("power 25") == "Power = 25, Channel = 17"
    assert dep.testbed.node(1).radio.power_level == 25


def test_channel_get(chain_deployment):
    dep = logged_in(chain_deployment)
    assert dep.run("channel") == "Power = 31, Channel = 17"


def test_neighborhood_mode_workflow(chain_deployment):
    """§IV-C.2's flow: neighborsetup → list → blacklist → update."""
    dep = logged_in(chain_deployment)
    # Mode commands are unavailable before entering the mode.
    with pytest.raises(UnknownCommand):
        dep.run("list")
    assert "neighborhood" in dep.run("neighborsetup")
    listing = dep.run("list")
    assert "192.168.0.2" in listing
    assert "blacklist add" in dep.run("blacklist add 192.168.0.2")
    assert "BLACKLISTED" in dep.run("list")
    dep.run("blacklist remove 192.168.0.2")
    assert "BLACKLISTED" not in dep.run("list")
    assert "1000 ms" in dep.run("update freq=1000")
    dep.run("exit")
    with pytest.raises(UnknownCommand):
        dep.run("list")


def test_unknown_command_raises(chain_deployment):
    dep = logged_in(chain_deployment)
    with pytest.raises(UnknownCommand):
        dep.run("frobnicate")


def test_bad_parameters_raise(chain_deployment):
    dep = logged_in(chain_deployment)
    with pytest.raises(ParameterError):
        dep.run("ping 192.168.0.2 round=abc")
    with pytest.raises(ParameterError):
        dep.run("ping 192.168.0.2 bogus=1")
    with pytest.raises(ParameterError):
        dep.run("ping")


def test_empty_line_is_noop(chain_deployment):
    dep = logged_in(chain_deployment)
    assert dep.interpreter.execute("") == ""


def test_last_result_holds_structured_data(chain_deployment):
    from repro.core.results import PingResult
    dep = logged_in(chain_deployment)
    dep.run("ping 192.168.0.2 round=1")
    assert isinstance(dep.interpreter.last_result, PingResult)
    assert dep.interpreter.last_result.target_id == 2


def test_session_renders_prompts(chain_deployment):
    dep = logged_in(chain_deployment)
    text = dep.interpreter.session(["pwd"])
    assert text.startswith("$ pwd\n/sn01/192.168.0.1")


def test_command_on_out_of_range_node_reports_error(chain_deployment):
    dep = logged_in(chain_deployment, 3)
    dep.testbed.add_node("far", (9999.0, 0.0), node_id=88)
    from repro.core.controller import install_controller
    install_controller(dep.testbed.node(88))
    dep.run("cd far")
    out = dep.run("power")
    assert out.startswith("error:")


def test_watch_is_passive_and_names_a_dead_node(chain_deployment):
    """`watch` listens to beacons and diagnoses without one probe packet:
    the report itself says 0 probes, and the control-traffic counter
    proves the shell sent nothing while watching."""
    from repro.faults import FaultPlan, FaultSpec, install_faults

    dep = logged_in(chain_deployment, 4, seed=4)
    assert "never been enabled" in dep.run("watch report")
    assert "listening" in dep.run("watch on")
    # Crash after the listener's per-link cadence baselines settle
    # (watch starts at t=15; baselines need ~10 beacon intervals).
    install_faults(dep.testbed, FaultPlan(name="t", specs=(
        FaultSpec(kind="node_crash", at=45.0, nodes=(4,)),)))
    sent_before = len(dep.testbed.monitor.packets)
    dep.testbed.run(until=80.0)
    out = dep.run("watch report")
    assert "0 probes sent" in out and "beacons heard" in out
    assert "dead_node" in out
    assert "Ran 0 probe(s)" in out
    # Everything transmitted while watching was the network's own
    # background traffic — the watch added nothing.
    kinds = {r.kind for r in dep.testbed.monitor.packets[sent_before:]}
    assert kinds <= {"beacon", "advert"}
    assert dep.interpreter.last_report is not None


def test_watch_off_keeps_the_report_and_help_mentions_watch(
        chain_deployment):
    dep = logged_in(chain_deployment)
    dep.run("watch on")
    dep.testbed.run(until=30.0)
    assert "disabled" in dep.run("watch off")
    assert "beacons heard" in dep.run("watch")      # state survives off
    assert "watch on|off|report" in dep.run("help")
    with pytest.raises(ParameterError):
        dep.run("watch sideways")
