"""Unit and property tests for LiteView wire formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.wire import (
    MsgType,
    PingProbe,
    PingReply,
    TraceProbe,
    TraceReply,
    TraceReport,
    pack_signed,
    unpack_signed,
)
from repro.errors import HeaderError


@given(st.integers(-128, 127))
def test_signed_byte_roundtrip(v):
    assert unpack_signed(pack_signed(v)) == v


def test_signed_byte_clamps():
    assert unpack_signed(pack_signed(300)) == 127
    assert unpack_signed(pack_signed(-300)) == -128


@given(st.integers(0, 0xFFFF), st.integers(0, 64), st.integers(0, 255))
def test_ping_probe_roundtrip(token, length, port):
    probe = PingProbe(token=token, length=length, routing_port=port)
    parsed = PingProbe.from_bytes(probe.to_bytes())
    assert parsed == probe


def test_ping_probe_respects_requested_length():
    probe = PingProbe(token=1, length=32)
    assert len(probe.to_bytes()) == 32


def test_ping_probe_minimum_length_is_header():
    probe = PingProbe(token=1, length=0)
    assert len(probe.to_bytes()) == 5


@given(
    st.integers(0, 0xFFFF), st.integers(0, 255), st.integers(-128, 127),
    st.integers(0, 255),
    st.lists(st.tuples(st.integers(0, 255), st.integers(-128, 127)),
             max_size=8),
)
def test_ping_reply_roundtrip(token, lqi, rssi, queue, hops):
    reply = PingReply(token=token, lqi=lqi, rssi=rssi, queue=queue,
                      forward_hops=tuple(hops))
    parsed = PingReply.from_bytes(reply.to_bytes())
    assert parsed == reply


def test_ping_reply_truncated_hops_rejected():
    reply = PingReply(token=1, lqi=100, rssi=-10, queue=0,
                      forward_hops=((100, -10),))
    with pytest.raises(HeaderError):
        PingReply.from_bytes(reply.to_bytes()[:-1])


@given(
    st.integers(0, 0xFFFF), st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
    st.integers(0, 255), st.integers(0, 255), st.integers(0, 64),
)
def test_trace_probe_roundtrip(session, origin, dest, hop, port, length):
    probe = TraceProbe(session=session, origin=origin, final_dest=dest,
                       hop_index=hop, routing_port=port, length=length)
    assert TraceProbe.from_bytes(probe.to_bytes()) == probe


@given(st.integers(0, 0xFFFF), st.integers(0, 255), st.integers(-128, 127),
       st.integers(0, 255))
def test_trace_reply_roundtrip(session, lqi, rssi, queue):
    reply = TraceReply(session=session, lqi=lqi, rssi=rssi, queue=queue)
    assert TraceReply.from_bytes(reply.to_bytes()) == reply


@given(
    st.integers(0, 0xFFFF), st.integers(0, 0xFFFF), st.integers(0, 255),
    st.integers(0, 2 ** 32 - 1), st.integers(0, 255), st.integers(0, 255),
    st.integers(-128, 127), st.integers(-128, 127),
    st.integers(0, 255), st.integers(0, 255),
)
def test_trace_report_roundtrip(session, probed, hop, rtt, lqi_f, lqi_b,
                                rssi_f, rssi_b, q_r, q_l):
    report = TraceReport(
        session=session, probed_node=probed, hop_index=hop, rtt_us=rtt,
        lqi_forward=lqi_f, lqi_backward=lqi_b,
        rssi_forward=rssi_f, rssi_backward=rssi_b,
        queue_remote=q_r, queue_local=q_l,
    )
    assert TraceReport.from_bytes(report.to_bytes()) == report


def test_wrong_type_byte_rejected():
    data = bytearray(PingProbe(token=1, length=10).to_bytes())
    data[0] = MsgType.PING_REPLY
    with pytest.raises(HeaderError):
        PingProbe.from_bytes(bytes(data))


def test_message_types_unique():
    values = [v for k, v in vars(MsgType).items() if not k.startswith("_")]
    assert len(set(values)) == len(values)
