"""Tests for the diagnosis workflows (E7: broken/asymmetric links,
hotspots)."""

import pytest

from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import (
    Hotspot,
    LinkClass,
    LinkReport,
    classify_link,
    classify_links,
    find_hotspots,
    probe_path,
    survey_link,
    survey_links,
)
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def make_deployment(n=3, seed=2, **kw):
    testbed = build_chain(n, spacing=60.0, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    return deploy_liteview(testbed, warm_up=15.0, **kw)


def report(**kw):
    defaults = dict(src=1, dst=2, sent=10, received=10, mean_rtt_ms=5.0,
                    lqi_forward=105.0, lqi_backward=104.0,
                    rssi_forward=-50.0, rssi_backward=-49.0)
    defaults.update(kw)
    return LinkReport(**defaults)


class TestClassification:
    def test_healthy(self):
        assert classify_link(report()) == LinkClass.HEALTHY

    def test_broken(self):
        r = report(received=0, mean_rtt_ms=None, lqi_forward=None,
                   lqi_backward=None, rssi_forward=None,
                   rssi_backward=None)
        assert classify_link(r) == LinkClass.BROKEN

    def test_asymmetric_by_lqi(self):
        r = report(lqi_forward=105.0, lqi_backward=80.0)
        assert classify_link(r) == LinkClass.ASYMMETRIC

    def test_asymmetric_by_rssi(self):
        r = report(rssi_forward=-40.0, rssi_backward=-60.0)
        assert classify_link(r) == LinkClass.ASYMMETRIC

    def test_lossy(self):
        r = report(received=6)
        assert classify_link(r) == LinkClass.LOSSY

    def test_groups_cover_everything(self):
        reports = [report(), report(received=0), report(received=5)]
        groups = classify_links(reports)
        assert sum(len(v) for v in groups.values()) == len(reports)

    def test_loss_ratio(self):
        assert report(received=7).loss_ratio == pytest.approx(0.3)
        assert report(sent=0, received=0).loss_ratio == 1.0


class TestSurvey:
    def test_healthy_link_survey(self):
        dep = make_deployment(3)
        result = survey_link(dep, 1, 2, rounds=5)
        assert result.received >= 4
        assert classify_link(result) == LinkClass.HEALTHY
        assert result.lqi_forward > 90

    def test_broken_link_detected(self):
        dep = make_deployment(3)
        # Physically break 1<->2 both ways.
        dep.testbed.propagation.set_link_shadowing_db(1, 2, 80.0)
        dep.testbed.propagation.set_link_shadowing_db(2, 1, 80.0)
        result = survey_link(dep, 1, 2, rounds=5)
        assert classify_link(result) == LinkClass.BROKEN

    def test_asymmetric_link_detected(self):
        dep = make_deployment(3)
        # Degrade only the 2->1 direction (e.g. a weak antenna at 2):
        # probes arrive fine, replies arrive at low LQI/RSSI.
        dep.testbed.propagation.set_link_shadowing_db(2, 1, 5.0)
        result = survey_link(dep, 1, 2, rounds=8)
        assert result.received >= 1
        label = classify_link(result)
        assert label in (LinkClass.ASYMMETRIC, LinkClass.LOSSY)
        assert result.lqi_backward < result.lqi_forward

    def test_survey_links_walks_pairs(self):
        dep = make_deployment(3)
        results = survey_links(dep, [(1, 2), (2, 3)], rounds=3)
        assert [(r.src, r.dst) for r in results] == [(1, 2), (2, 3)]
        assert all(r.received >= 1 for r in results)


class TestHotspots:
    def test_probe_path_returns_result(self):
        dep = make_deployment(4, seed=4)
        result = probe_path(dep, 1, 4)
        assert result is not None
        assert result.reached_target

    def test_quiet_network_has_no_strong_hotspots(self):
        dep = make_deployment(4, seed=4)
        hotspots = find_hotspots(dep, [(1, 4)], score_threshold=3.0)
        assert all(h.max_queue <= 1 for h in hotspots)

    def test_hotspot_dataclass_ordering(self):
        hs = [
            Hotspot(node_id=1, mean_hop_rtt_ms=5.0, max_queue=0,
                    samples=3, score=1.0),
            Hotspot(node_id=2, mean_hop_rtt_ms=50.0, max_queue=3,
                    samples=3, score=10.0),
        ]
        assert max(hs, key=lambda h: h.score).node_id == 2
