"""Remaining interpreter edge cases."""

import pytest

from repro.errors import ParameterError


def logged_in(chain_deployment, n=3, **kw):
    dep = chain_deployment(n, **kw)
    dep.login("192.168.0.1")
    return dep


def test_group_channel_moves_nodes(chain_deployment):
    dep = logged_in(chain_deployment, 2, spacing=30.0)
    out = dep.run("group channel 20")
    assert "Channel = 20" in out
    # Every node that replied actually switched.
    for node in dep.testbed.nodes():
        if f"{node.name}:" in out:
            assert node.radio.channel == 20


def test_scan_rejects_bad_parameters_via_shell(chain_deployment):
    dep = logged_in(chain_deployment)
    with pytest.raises(ParameterError):
        dep.run("scan first=abc")
    with pytest.raises(ParameterError):
        dep.run("scan bogus=1")
    # Out-of-band scan range comes back as an over-the-air error reply.
    out = dep.run("scan first=25 count=9")
    assert out.startswith("error:")


def test_management_commands_require_context(chain_deployment):
    from repro.errors import CommandError
    dep = chain_deployment(2)  # no login
    for line in ("power", "ping 192.168.0.2", "events", "ps",
                 "neighborsetup"):
        with pytest.raises(CommandError):
            dep.run(line)


def test_attach_without_argument_uses_context(chain_deployment):
    dep = logged_in(chain_deployment, 3)
    dep.run("cd 192.168.0.3")
    dep.run("attach")
    target = dep.testbed.node(3).position
    ws = dep.workstation.node.position
    assert abs(ws[0] - target[0]) < 10 and abs(ws[1] - target[1]) < 10


def test_attach_without_any_context_errors(chain_deployment):
    dep = chain_deployment(2)
    assert "error" in dep.interpreter.execute("attach")


def test_help_reflects_mode(chain_deployment):
    dep = logged_in(chain_deployment)
    base = dep.run("help")
    assert "blacklist" not in base
    dep.run("neighborsetup")
    assert "blacklist" in dep.run("help")


def test_whitespace_only_line(chain_deployment):
    dep = logged_in(chain_deployment)
    assert dep.interpreter.execute("   ") == ""
