"""Unit tests for result objects and their paper-style rendering."""

from repro.core.results import (
    LinkObservation,
    NeighborView,
    PingResult,
    PingRound,
    TracerouteHop,
    TracerouteResult,
)

LINK = LinkObservation(
    lqi_forward=108, lqi_backward=106, rssi_forward=-1, rssi_backward=8,
    queue_remote=0, queue_local=0,
)


def make_ping_result(**kw):
    defaults = dict(
        target_name="192.168.0.2", target_id=2, requested_rounds=1,
        probe_length=32, power_level=31, channel=17,
    )
    defaults.update(kw)
    return PingResult(**defaults)


def test_link_observation_renders_paper_format():
    assert LINK.render() == "LQI = 108/106, RSSI = -1/8, Queue = 0/0"


def test_ping_render_matches_paper_sample():
    """Reproduce the §III-B.3 sample output structure exactly."""
    result = make_ping_result(sent=1)
    result.rounds.append(PingRound(seq=0, rtt_ms=4.7, link=LINK))
    text = result.render()
    assert "Pinging 192.168.0.2 with 1 packets with 32 bytes:" in text
    assert "RTT = 4.7 ms, LQI = 108/106, RSSI = -1/8, Queue = 0/0" in text
    assert "Power = 31, Channel = 17" in text
    assert "Ping statistics:" in text
    assert "Packets = 1" in text
    assert "Received = 1" in text
    assert "Lost = 0" in text


def test_ping_statistics_accounting():
    result = make_ping_result(requested_rounds=3, sent=3)
    result.rounds.append(PingRound(seq=0, rtt_ms=5.0, link=LINK))
    assert result.received == 1
    assert result.lost == 2
    assert result.loss_ratio == 2 / 3
    assert result.mean_rtt_ms == 5.0


def test_ping_empty_statistics():
    result = make_ping_result()
    assert result.received == 0
    assert result.lost == 0
    assert result.loss_ratio == 0.0
    assert result.mean_rtt_ms is None


def test_ping_render_includes_paths():
    result = make_ping_result(sent=1)
    result.rounds.append(PingRound(
        seq=0, rtt_ms=10.0, link=LINK,
        forward_path=((106, -48),), backward_path=((103, -50),),
    ))
    text = result.render()
    assert "forward path (LQI/RSSI): 106/-48" in text
    assert "backward path (LQI/RSSI): 103/-50" in text


def make_trace_result():
    return TracerouteResult(
        target_name="192.168.0.3", target_id=3, requested_rounds=1,
        probe_length=32, protocol_name="geographic forwarding",
        routing_port=10,
    )


def test_traceroute_render_matches_paper_sample():
    """Reproduce the §III-B.4 sample output structure."""
    result = make_trace_result()
    result.sent = 1
    result.hops.append(TracerouteHop(
        hop_index=1, probed_node_id=2, probed_node_name="192.168.0.2",
        rtt_ms=4.9, link=LinkObservation(106, 107, 1, 2, 0, 0),
        arrival_ms=10.0,
    ))
    result.hops.append(TracerouteHop(
        hop_index=2, probed_node_id=3, probed_node_name="192.168.0.3",
        rtt_ms=4.7, link=LinkObservation(105, 103, -1, 0, 0, 0),
        arrival_ms=25.0,
    ))
    text = result.render()
    assert "Reaching 192.168.0.3 with 1 packets with 32 bytes:" in text
    assert "Name of protocol: geographic forwarding" in text
    assert "Reply from 192.168.0.2" in text
    assert "RTT = 4.9 ms, LQI = 106/107, RSSI = 1/2, Queue = 0/0" in text
    assert "Reply from 192.168.0.3" in text
    assert "Traceroute statistics:" in text
    assert "Received = 1" in text


def test_traceroute_reached_and_hop_count():
    result = make_trace_result()
    result.sent = 1
    assert not result.reached_target
    result.hops.append(TracerouteHop(
        hop_index=2, probed_node_id=3, probed_node_name="x",
        rtt_ms=1.0, link=LINK, arrival_ms=5.0,
    ))
    assert result.reached_target
    assert result.hop_count == 2
    assert result.received == 1
    assert result.lost == 0


def test_arrival_series_sorted_by_hop():
    result = make_trace_result()
    for hop, arrival in ((3, 30.0), (1, 10.0), (2, 20.0)):
        result.hops.append(TracerouteHop(
            hop_index=hop, probed_node_id=hop + 1, probed_node_name="x",
            rtt_ms=1.0, link=LINK, arrival_ms=arrival,
        ))
    assert result.arrival_series_ms() == [(1, 10.0), (2, 20.0), (3, 30.0)]


def test_neighbor_view_render():
    view = NeighborView(node_id=2, lqi=107, rssi=-48, prr_percent=98,
                        enabled=True)
    text = view.render("192.168.0.2")
    assert "192.168.0.2" in text and "LQI = 107" in text
    assert "enabled" in text
    blacklisted = NeighborView(node_id=2, lqi=10, rssi=-90, prr_percent=1,
                               enabled=False)
    assert "BLACKLISTED" in blacklisted.render()
