"""Tests for the ping command (Figure 3) through the node-side API."""

import pytest

from repro.errors import ParameterError


def run_ping(dep, src, **kwargs):
    tb = dep.testbed
    service = dep.ping_services[tb.namespace.resolve(src)]
    target = kwargs.pop("target")
    proc = tb.env.process(
        service.ping(tb.namespace.resolve(target), **kwargs)
    )
    return tb.env.run(until=proc)


def test_one_hop_ping_succeeds(chain_deployment):
    dep = chain_deployment(3)
    result = run_ping(dep, 1, target=2, rounds=1, length=32)
    assert result.sent == 1 and result.received == 1
    [r] = result.rounds
    assert 0 < r.rtt_ms < 100
    assert 50 <= r.link.lqi_forward <= 110
    assert 50 <= r.link.lqi_backward <= 110


def test_ping_reports_power_and_channel(chain_deployment):
    dep = chain_deployment(2)
    node = dep.testbed.node(1)
    node.radio.set_power_level(25)
    result = run_ping(dep, 1, target=2, rounds=1)
    assert result.power_level == 25
    assert result.channel == 17


def test_multiple_rounds(chain_deployment):
    dep = chain_deployment(2)
    result = run_ping(dep, 1, target=2, rounds=5, length=16)
    assert result.sent == 5
    assert result.received >= 4  # clean link; allow one unlucky draw
    assert len({r.seq for r in result.rounds}) == result.received


def test_ping_unreachable_target_times_out(chain_deployment):
    dep = chain_deployment(2)
    tb = dep.testbed
    tb.add_node("ghost", (5000.0, 0.0), node_id=99)
    from repro.core.commands.ping import install_ping
    install_ping(tb.node(99))
    result = run_ping(dep, 1, target=99, rounds=2, timeout=0.2)
    assert result.sent == 2
    assert result.received == 0
    assert result.lost == 2
    assert tb.monitor.counter("ping.timeouts") == 2


def test_multi_hop_ping_collects_both_paths(chain_deployment):
    dep = chain_deployment(4)
    result = run_ping(dep, 1, target=4, rounds=1, length=16,
                      routing_port=10)
    assert result.received == 1
    [r] = result.rounds
    # Forward path (from the probe's padding, echoed in the reply) and
    # backward path (the reply's own padding) both cover every hop.
    assert len(r.forward_path) >= 2
    assert len(r.backward_path) >= 2
    assert all(50 <= lqi <= 110 for lqi, _ in r.forward_path)
    assert all(-128 <= rssi <= 127 for _, rssi in r.backward_path)


def test_multi_hop_rtt_exceeds_one_hop(chain_deployment):
    dep = chain_deployment(5)
    one = run_ping(dep, 1, target=2, rounds=3)
    multi = run_ping(dep, 1, target=5, rounds=3, routing_port=10)
    assert multi.received >= 1 and one.received >= 1
    assert multi.mean_rtt_ms > one.mean_rtt_ms


def test_ping_parameter_validation(chain_deployment):
    dep = chain_deployment(2)
    service = dep.ping_services[1]
    with pytest.raises(ParameterError):
        next(service.ping(2, rounds=0))
    with pytest.raises(ParameterError):
        next(service.ping(2, length=65))
    with pytest.raises(ParameterError):
        proc = dep.testbed.env.process(service.ping(2, routing_port=99))
        dep.testbed.env.run(until=proc)


def test_ping_reply_reports_queue_occupancy(chain_deployment):
    """White-box: a probe answered while the MAC queue is backed up must
    report the occupancy (the paper's ``Queue = n/m`` value)."""
    from repro.core.wire import PingProbe, PingReply
    from repro.net.packet import Packet
    from repro.net.ports import WellKnownPorts

    dep = chain_deployment(2)
    tb = dep.testbed
    target = tb.node(2)
    # Back up the target's transmit queue (without airing anything: the
    # MAC's consumer only runs when the simulation advances).
    from repro.mac.frame import BROADCAST, Frame
    for _ in range(4):
        target.mac.queue.put(Frame(src=2, dst=BROADCAST,
                                   payload=bytes(50), kind="app"))
    backlog = target.mac.queue_occupancy
    assert backlog >= 3

    # Deliver a probe synthetically and catch the reply in the queue.
    from repro.radio.medium import FrameArrival
    probe = PingProbe(token=9, length=16)
    packet = Packet(port=WellKnownPorts.PING, origin=1, dest=2,
                    payload=probe.to_bytes())
    arrival = FrameArrival(
        frame=Frame(src=1, dst=2, payload=packet.to_bytes(), kind="ping"),
        payload=packet.to_bytes(), sender=1, receiver=2, channel=17,
        rx_power_dbm=-60.0, sinr_db=20.0, rssi=-15, lqi=108, crc_ok=True,
        time=tb.env.now,
    )
    dep.ping_services[2]._answer_probe(packet, arrival)
    reply_frame = target.mac.queue._items[-1]
    reply_packet = Packet.from_bytes(reply_frame.payload)
    reply = PingReply.from_bytes(reply_packet.payload)
    assert reply.token == 9
    assert reply.queue >= backlog
    assert reply.lqi == 108 and reply.rssi == -15


def test_probe_length_affects_airtime(chain_deployment):
    """Longer probes must take measurably longer on the air."""
    dep = chain_deployment(2)
    short = run_ping(dep, 1, target=2, rounds=3, length=8)
    long = run_ping(dep, 1, target=2, rounds=3, length=64)
    assert short.received and long.received
    assert long.mean_rtt_ms > short.mean_rtt_ms
