"""Tests for the channel-scan, group and events shell commands."""

import pytest

from repro.errors import ParameterError
from repro.workloads import Flow, TrafficGenerator


def logged_in(chain_deployment, n=3, **kw):
    dep = chain_deployment(n, **kw)
    dep.login("192.168.0.1")
    return dep


class TestScan:
    def test_scan_quiet_network_reads_noise_floor(self, chain_deployment):
        dep = logged_in(chain_deployment)
        out = dep.run("scan first=20 count=3 samples=2")
        lines = out.splitlines()
        assert lines[0].startswith("channel")
        readings = [int(l.split()[1]) for l in lines[1:]]
        assert len(readings) == 3
        # Quiet channels read near the noise floor (~ -53 register).
        assert all(-60 <= r <= -45 for r in readings)

    def test_scan_detects_busy_channel(self, chain_deployment):
        dep = logged_in(chain_deployment, 4, spacing=40.0)
        tb = dep.testbed
        gen = TrafficGenerator(tb, [
            Flow(src=2, dst=4, interval=0.01, payload_bytes=48),
        ])
        gen.start()
        out = dep.run("scan first=16 count=3 samples=8 dwell=7")
        gen.stop()
        readings = {}
        for line in out.splitlines()[1:]:
            parts = line.split()
            readings[int(parts[0])] = int(parts[1])
        # The home channel (17) carries the flow; its peak clearly
        # exceeds the quiet channels either side.
        assert readings[17] > readings[16] + 5
        assert readings[17] > readings[18] + 5

    def test_scan_restores_home_channel(self, chain_deployment):
        dep = logged_in(chain_deployment)
        dep.run("scan first=11 count=4 samples=1")
        assert dep.testbed.node(1).radio.channel == 17

    def test_scan_parameter_validation(self, chain_deployment):
        from repro.core.commands.scan import channel_scan
        dep = logged_in(chain_deployment)
        node = dep.testbed.node(1)
        with pytest.raises(ParameterError):
            next(channel_scan(node, first=5))
        with pytest.raises(ParameterError):
            next(channel_scan(node, first=25, count=5))
        with pytest.raises(ParameterError):
            next(channel_scan(node, samples=0))


class TestGroup:
    def test_group_radio_reads_all_in_range(self, chain_deployment):
        dep = logged_in(chain_deployment, 3, spacing=30.0)
        dep.workstation.node.position = (30.0, -15.0)
        out = dep.run("group radio")
        assert "192.168.0.1: Power = 31, Channel = 17" in out
        assert "192.168.0.2" in out
        assert "nodes replied" in out

    def test_group_power_sets_everywhere(self, chain_deployment):
        dep = logged_in(chain_deployment, 3, spacing=30.0)
        dep.workstation.node.position = (30.0, -15.0)
        out = dep.run("group power 20")
        assert "Power = 20" in out
        replied = int(out.rsplit("(", 1)[1].split()[0])
        assert replied >= 2
        for node_id in (1, 2, 3):
            node = dep.testbed.node(node_id)
            # Nodes out of the broadcast's reach keep their old setting;
            # the ones that replied must have switched.
            if f"192.168.0.{node_id}:" in out:
                assert node.radio.power_level == 20

    def test_group_requires_subcommand(self, chain_deployment):
        dep = logged_in(chain_deployment)
        with pytest.raises(ParameterError):
            dep.run("group")
        with pytest.raises(ParameterError):
            dep.run("group bogus")

    def test_group_no_replies_out_of_range(self, chain_deployment):
        dep = logged_in(chain_deployment, 2)
        dep.workstation.node.position = (9000.0, 0.0)
        assert "no replies" in dep.run("group radio")


class TestEvents:
    def test_events_empty_initially(self, chain_deployment):
        dep = logged_in(chain_deployment)
        assert dep.run("events") == "event log is empty"

    def test_events_reflect_management_actions(self, chain_deployment):
        dep = logged_in(chain_deployment)
        dep.run("power 12")
        dep.run("neighborsetup")
        dep.run("blacklist add 192.168.0.2")
        dep.run("exit")
        out = dep.run("events")
        assert "radio.power: 31 -> 12" in out
        assert "neighbor.blacklist: node 2 disabled" in out

    def test_events_limit(self, chain_deployment):
        dep = logged_in(chain_deployment)
        for level in (10, 11, 12, 13):
            dep.run(f"power {level}")
        out = dep.run("events limit=2")
        assert len(out.splitlines()) == 2
        assert "-> 13" in out
