"""The passive-mode contract: listening costs nothing, byte for byte.

A ``mode="passive"`` fleet assesses health from the beacon stream
alone.  The regression pinned here is the strongest form of that
claim: a served passive fleet's ``Monitor.packet_digest()`` is
*byte-identical* to a bare deployment of the same spec/seed/horizon
that has no assessor, no online monitor, and no server at all — and
its probe-kind transmission counters are exactly zero.
"""

import asyncio

from repro.core.deploy import deploy_liteview
from repro.diag.online import PROBE_PACKET_KINDS
from repro.serve import ServeApp, build_fleet
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

from tests.serve.conftest import fetch_json

SEED, WARM_UP, HORIZON = 11, 10.0, 50.0
FLEET_KW = dict(seed=SEED, assess_every=20.0, warm_up=WARM_UP,
                publish_trace=False)


def bare_digest() -> str:
    """The golden: same world, no assessor/monitor/server anywhere."""
    testbed = build_chain(5, seed=SEED,
                          propagation_kwargs=QUIET_PROPAGATION)
    deploy_liteview(testbed, warm_up=WARM_UP)
    testbed.run(until=HORIZON)
    return testbed.monitor.packet_digest()


def probe_packets(monitor) -> int:
    return sum(1 for r in monitor.packets
               if r.kind in PROBE_PACKET_KINDS)


def test_passive_fleet_digest_matches_bare_world():
    fleet = build_fleet("chain:5", mode="passive", **FLEET_KW)
    for _ in range(8):
        fleet.advance((HORIZON - WARM_UP) / 8)
    assert fleet.assessor.assessments == 2          # t=30, t=50
    assert fleet.monitor.packet_digest() == bare_digest()
    assert probe_packets(fleet.monitor) == 0
    # The listener demonstrably ran: it consumed the beacon stream.
    assert fleet.monitor.counter("diag.online.beacons") > 0
    assert fleet.assessor.online.beacons_seen > 0


def test_active_fleet_probes_and_diverges():
    """The control arm: the same fleet in active mode injects probe
    packets, so its digest cannot match the bare world."""
    fleet = build_fleet("chain:5", mode="active", **FLEET_KW)
    for _ in range(8):
        fleet.advance((HORIZON - WARM_UP) / 8)
    assert probe_packets(fleet.monitor) > 0
    assert fleet.monitor.packet_digest() != bare_digest()


def test_served_passive_fleet_stays_byte_identical_under_load():
    """HTTP pollers + a passive assessor: still the bare world's bytes,
    and /health reports its mode and a real verdict."""
    golden = bare_digest()

    async def main():
        fleet = build_fleet("chain:5", mode="passive", **FLEET_KW)
        app = ServeApp([fleet])
        await app.start(auto_tick=False)
        try:
            for _ in range(8):
                clients = [
                    asyncio.ensure_future(fetch_json(
                        app.port, f"/fleets/{fleet.name}/health"))
                    for _ in range(20)
                ]
                await asyncio.sleep(0)
                fleet.advance((HORIZON - WARM_UP) / 8)
                for status, payload in await asyncio.gather(*clients):
                    assert status == 200
                    assert payload["mode"] == "passive"
            status, payload = await fetch_json(
                app.port, f"/fleets/{fleet.name}/health")
            assert status == 200
            assert payload["status"] == "green"
            assert payload["assessments"] == 2
            return fleet.monitor.packet_digest()
        finally:
            await app.stop()

    assert asyncio.run(main()) == golden
