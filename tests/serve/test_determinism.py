"""The serving determinism contract, proven on packet digests.

The tentpole guarantee: hosting a fleet behind HTTP — any number of
pollers, SSE subscribers (including stalled ones), however the advances
are sliced — leaves the simulation *byte-identical* to an unserved run
of the same configuration.  These tests compare
``Monitor.packet_digest()`` (the order-sensitive SHA-256 the golden
suite uses) between served and unserved worlds.
"""

import asyncio

from repro.serve import ServeApp, build_fleet
from repro.serve.hub import EventHub

from tests.serve.conftest import fetch

FLEET_KW = dict(seed=11, assess_every=20.0, warm_up=10.0)


def unserved_digest(spec, total, slices, **kw):
    """The golden: same fleet config advanced with no server at all."""
    fleet = build_fleet(spec, publish_trace=False, **kw)
    for _ in range(slices):
        fleet.advance(total / slices)
    return fleet.monitor.packet_digest()


def test_advance_slicing_is_not_an_input():
    """One 40 s advance == 8x5 s == 40x1 s, to the last packet bit."""
    digests = {
        unserved_digest("chain:5", 40.0, slices, **FLEET_KW)
        for slices in (1, 8, 40)
    }
    assert len(digests) == 1


def test_served_run_matches_unserved_golden_under_polling_load():
    """~100 concurrent pollers hammering every endpoint while the sim
    advances must not move a single bit of the packet log."""
    golden = unserved_digest("chain:5", 40.0, 8, **FLEET_KW)

    async def main():
        fleet = build_fleet("chain:5", **FLEET_KW)
        app = ServeApp([fleet])
        await app.start(auto_tick=False)
        try:
            paths = ("/metrics", "/health", "/",
                     f"/fleets/{fleet.name}/health",
                     f"/fleets/{fleet.name}/stats")

            async def poller(i):
                status, _, _ = await fetch(app.port, paths[i % len(paths)])
                assert status == 200

            for _ in range(8):
                clients = [asyncio.ensure_future(poller(i))
                           for i in range(100)]
                # Interleave the advance with the in-flight requests —
                # the single-threaded loop serializes them at safe
                # points, which is exactly the claim under test.
                await asyncio.sleep(0)
                fleet.advance(5.0)
                await asyncio.gather(*clients)
            return fleet.monitor.packet_digest()
        finally:
            await app.stop()

    assert asyncio.run(main()) == golden


def test_stalled_sse_client_drops_events_but_not_packets():
    """One subscriber that never reads: its queue fills, its drop
    counter climbs, and the sim stays byte-identical to the golden."""
    golden = unserved_digest("chain:5", 40.0, 8, **FLEET_KW)

    async def main():
        import socket

        fleet = build_fleet("chain:5", **FLEET_KW)
        # A tiny queue bound makes the stall observable quickly, and
        # tiny kernel buffers make the pump park after a few frames
        # instead of letting the kernel absorb the whole run's events.
        app = ServeApp([fleet], hub=EventHub(queue_limit=4))
        await app.start(auto_tick=False)
        # Accepted connections inherit the listener's buffer sizing.
        app._server.sockets[0].setsockopt(
            socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        try:
            # The stalled client: opens the stream, reads only the HTTP
            # head, then never drains another byte.
            client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            client.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            client.setblocking(False)
            await asyncio.get_running_loop().sock_connect(
                client, ("127.0.0.1", app.port))
            reader, writer = await asyncio.open_connection(sock=client)
            writer.write(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            await asyncio.sleep(0.05)
            assert len(app.hub) == 1
            (sub,) = app.hub.subscribers

            for _ in range(8):
                fleet.advance(5.0)
                await asyncio.sleep(0)

            assert sub.dropped > 0, "stall never hit the queue bound"
            assert app.hub.total_dropped == sub.dropped
            writer.close()
            return fleet.monitor.packet_digest()
        finally:
            await app.stop()

    assert asyncio.run(main()) == golden


def test_healthy_and_stalled_subscribers_coexist():
    """A reading client keeps receiving while a stalled one sheds —
    drops are per-subscriber, not global."""

    async def main():
        import socket

        fleet = build_fleet("chain:5", **FLEET_KW)
        # queue_limit=2 plus tiny kernel buffers: the stalled reader
        # must start shedding well inside the run's event volume.
        app = ServeApp([fleet], hub=EventHub(queue_limit=2))
        await app.start(auto_tick=False)
        app._server.sockets[0].setsockopt(
            socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        try:
            async def open_stream(rcvbuf=None):
                if rcvbuf is None:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", app.port)
                else:
                    raw = socket.socket(socket.AF_INET,
                                        socket.SOCK_STREAM)
                    raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                                   rcvbuf)
                    raw.setblocking(False)
                    await asyncio.get_running_loop().sock_connect(
                        raw, ("127.0.0.1", app.port))
                    reader, writer = await asyncio.open_connection(
                        sock=raw)
                writer.write(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                await reader.readuntil(b"\r\n\r\n")
                return reader, writer

            healthy_reader, healthy_writer = await open_stream()
            _stalled_reader, stalled_writer = await open_stream(
                rcvbuf=4096)
            await asyncio.sleep(0.05)
            assert len(app.hub) == 2

            frames = 0

            async def drain_healthy():
                nonlocal frames
                while True:
                    await healthy_reader.readuntil(b"\n\n")
                    frames += 1

            drainer = asyncio.ensure_future(drain_healthy())
            for _ in range(16):
                fleet.advance(5.0)
                await asyncio.sleep(0.01)
            drainer.cancel()

            subs = {s.id: s for s in app.hub.subscribers}
            dropped = sorted(s.dropped for s in subs.values())
            assert frames > 0
            assert dropped[-1] > 0          # the stalled one shed
            assert dropped[0] < dropped[-1]  # the healthy one shed less
            healthy_writer.close()
            stalled_writer.close()
        finally:
            await app.stop()

    asyncio.run(main())


def test_acceptance_hundred_node_fleet_under_hundred_clients():
    """ISSUE acceptance: a 100-node fleet served to >=100 concurrent
    polling clients produces a digest byte-identical to the unserved
    run, and /health goes red (with a recommendation) within one
    assessment period of an injected link_degrade."""
    kw = dict(seed=3, assess_every=25.0, warm_up=10.0, rounds=2,
              links=[(1, 2), (2, 3), (3, 4), (11, 12), (55, 56)])
    plan = {"enabled": True,
            "specs": [{"kind": "link_degrade", "link": [2, 3],
                       "loss_db": 80.0, "at": 0.0}]}

    # Golden: unserved, fault queued before the same tick (tick 3).
    golden_fleet = build_fleet("hundred", publish_trace=False, **kw)
    for step in range(6):
        if step == 3:
            golden_fleet.queue_fault_plan(plan)
        golden_fleet.advance(10.0)
    golden = golden_fleet.monitor.packet_digest()
    assert golden_fleet.health_payload["status"] == "red"

    async def main():
        from tests.serve.conftest import fetch_json

        fleet = build_fleet("hundred", **kw)
        app = ServeApp([fleet])
        await app.start(auto_tick=False)
        try:
            async def poller(i):
                path = "/metrics" if i % 2 else \
                    f"/fleets/{fleet.name}/health"
                status, _, _ = await fetch(app.port, path)
                assert status == 200

            for step in range(6):
                if step == 3:
                    status, _ = await fetch_json(
                        app.port, f"/fleets/{fleet.name}/faults",
                        "POST", plan)
                    assert status == 202
                clients = [asyncio.ensure_future(poller(i))
                           for i in range(100)]
                await asyncio.sleep(0)
                fleet.advance(10.0)
                await asyncio.gather(*clients)

            status, payload = await fetch_json(
                app.port, f"/fleets/{fleet.name}/health")
            assert payload["status"] == "red"
            link = payload["links"]["2->3"]
            assert link["status"] == "red"
            assert link["recommendation"]
            return fleet.monitor.packet_digest()
        finally:
            await app.stop()

    assert asyncio.run(main()) == golden
