"""Unit tests for the SSE event hub: bounded fan-out, drop accounting,
and the wire format."""

import asyncio
import json

from repro.serve.hub import EventHub, format_sse


def run(coro):
    return asyncio.run(coro)


def test_subscribe_unsubscribe_lifecycle():
    hub = EventHub()
    assert len(hub) == 0
    sub = hub.subscribe()
    assert len(hub) == 1
    assert sub in hub.subscribers
    hub.unsubscribe(sub)
    assert len(hub) == 0
    # Double unsubscribe is a no-op, not an error.
    hub.unsubscribe(sub)


def test_publish_reaches_every_subscriber():
    async def main():
        hub = EventHub()
        subs = [hub.subscribe() for _ in range(3)]
        hub.publish({"type": "health", "n": 1})
        hub.publish({"type": "trace", "n": 2})
        for sub in subs:
            first = await sub.get()
            second = await sub.get()
            assert first["n"] == 1 and second["n"] == 2
            assert sub.delivered == 2 and sub.dropped == 0
        assert hub.total_published == 2
        assert hub.total_dropped == 0

    run(main())


def test_full_queue_drops_and_counts_without_blocking():
    async def main():
        hub = EventHub(queue_limit=2)
        stalled = hub.subscribe()
        healthy = hub.subscribe()
        for n in range(5):
            hub.publish({"n": n})
            # The healthy reader keeps up; the stalled one never reads.
            assert (await healthy.get())["n"] == n
        assert stalled.delivered == 2       # queue bound
        assert stalled.dropped == 3         # the rest were shed
        assert healthy.dropped == 0
        assert hub.total_dropped == 3
        # The stalled reader still gets what was queued before it fell
        # behind — drops lose the newest events, never reorder.
        assert (await stalled.get())["n"] == 0
        assert (await stalled.get())["n"] == 1

    run(main())


def test_publish_with_no_subscribers_is_cheap_noop():
    hub = EventHub()
    hub.publish({"n": 1})
    assert hub.total_published == 1
    assert hub.total_dropped == 0


def test_format_sse_wire_shape():
    frame = format_sse({"type": "finding", "fleet": "f", "x": 1}, 7)
    text = frame.decode()
    lines = text.split("\n")
    assert lines[0] == "event: finding"
    assert lines[1] == "id: 7"
    assert lines[2].startswith("data: ")
    assert text.endswith("\n\n")
    payload = json.loads(lines[2][len("data: "):])
    assert payload == {"type": "finding", "fleet": "f", "x": 1}


def test_format_sse_defaults():
    frame = format_sse({"x": 1}).decode()
    assert frame.startswith("event: message\n")
    assert "id:" not in frame
