"""City-tier fleet specs and the /health watchlist clamp."""

import pytest

from repro.serve import MAX_WATCHLIST, HealthAssessor, build_fleet
from repro.serve.health import nearest_neighbor_links


def test_city_spec_builds_a_sized_city_fleet():
    # city:40 → a single 40-node district (plus the workstation).
    fleet = build_fleet("city:40", seed=7, warm_up=5.0)
    assert fleet.name == "city40"
    assert len(fleet.testbed) >= 40
    # The watchlist came out clamped (trivially, here — the district's
    # nearest-neighbor list is already below the cap).
    assert len(fleet.assessor.watched_links) <= MAX_WATCHLIST


def test_unknown_spec_message_names_city():
    with pytest.raises(ValueError, match="city"):
        build_fleet("metropolis", seed=7, warm_up=0.0)
    with pytest.raises(ValueError, match="positive"):
        build_fleet("city:0", seed=7, warm_up=0.0)


def test_watchlist_clamp_is_deterministic_even_stride():
    fleet = build_fleet("chain:8", seed=7, warm_up=5.0)
    deployment = fleet.deployment
    full = nearest_neighbor_links(
        fleet.testbed, exclude={deployment.workstation.node.id})
    assert len(full) > 3
    clamped = HealthAssessor(deployment, max_links=3)
    assert len(clamped.watched_links) == 3
    # A subsample of the full sorted list, in order, spread by stride.
    assert set(clamped.watched_links) <= set(full)
    assert list(clamped.watched_links) == sorted(clamped.watched_links)
    assert clamped.watched_links[0] == full[0]
    # Unclamped and over-sized caps leave the list alone.
    assert HealthAssessor(deployment).watched_links == full
    assert HealthAssessor(deployment, max_links=999).watched_links == full
