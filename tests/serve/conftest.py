"""Shared helpers for the fleet-server tests.

No pytest-asyncio in the dependency set, so every async test drives its
own loop via ``asyncio.run`` inside a plain sync test function; the
helpers here are ordinary coroutines those tests await.
"""

import asyncio
import json


async def fetch(port: int, path: str, method: str = "GET",
                body: bytes | None = None) -> tuple[int, dict, bytes]:
    """One HTTP exchange against a ServeApp; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        if body is not None:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + (body or b""))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


async def fetch_json(port: int, path: str, method: str = "GET",
                     payload: object = None) -> tuple[int, object]:
    body = (None if payload is None
            else json.dumps(payload).encode())
    status, _, raw = await fetch(port, path, method, body)
    return status, json.loads(raw)


def parse_prometheus(text: str) -> dict[str, float]:
    """Samples of a Prometheus exposition, keyed name{labels} -> value.

    Doubles as a format check: every non-comment line must parse.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        assert key, f"unparseable sample line: {line!r}"
        samples[key] = float(value)
    return samples
