"""Campaigns over HTTP: launch, poll, digest parity with local runs.

``POST /campaigns`` coordinates the campaign off the event loop (cells
execute in warm-pool worker processes), so the served digest must be
identical to calling :func:`run_campaign` directly — the serve layer is
plumbing, never a second execution semantics.
"""

import asyncio

from repro.campaign import Campaign, run_campaign
from repro.serve import ServeApp, build_fleet

from tests.serve.conftest import fetch_json

BODY = {
    "scenario": "chain_beacons", "name": "served", "seed": 9,
    "base_params": {"seconds": 5.0}, "grid": {"nodes": [3, 4]},
    "workers": 1,
}
LOCAL = Campaign(
    name="served", scenario="chain_beacons", seed=9,
    base_params={"seconds": 5.0}, grid={"nodes": [3, 4]},
)


def make_app():
    fleet = build_fleet("chain:5", seed=7, assess_every=20.0, warm_up=10.0)
    return ServeApp([fleet])


async def poll_until_settled(port, name, timeout=60.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while True:
        status, record = await fetch_json(port, f"/campaigns/{name}")
        assert status == 200
        if record["status"] != "running":
            return record
        assert asyncio.get_event_loop().time() < deadline, record
        await asyncio.sleep(0.05)


def test_posted_campaign_runs_to_the_local_digest():
    async def main():
        app = make_app()
        await app.start(auto_tick=False)
        try:
            status, reply = await fetch_json(
                app.port, "/campaigns", "POST", BODY)
            assert status == 202
            assert reply["accepted"] is True
            assert reply["status_url"] == "/campaigns/served"
            assert reply["campaign"]["total"] == 2
            record = await poll_until_settled(app.port, "served")
            assert record["status"] == "done", record
            assert record["runs"] == 2 and record["failed"] == 0
            assert record["failures"] == []
            assert record["digest"] == run_campaign(LOCAL,
                                                    workers=1).digest()
            status, listing = await fetch_json(app.port, "/campaigns")
            assert status == 200
            assert [c["name"] for c in listing["campaigns"]] == ["served"]
        finally:
            await app.stop()

    asyncio.run(main())


def test_sharded_campaign_over_http():
    async def main():
        app = make_app()
        await app.start(auto_tick=False)
        try:
            body = dict(BODY, name="half", shard=[0, 2])
            status, reply = await fetch_json(
                app.port, "/campaigns", "POST", body)
            assert status == 202
            assert reply["campaign"]["shard"] == [0, 2]
            assert reply["campaign"]["total"] == 1
            record = await poll_until_settled(app.port, "half")
            assert record["status"] == "done", record
            assert record["runs"] == 1
            local = run_campaign(LOCAL.shard(0, 2), workers=1)
            assert record["digest"] == local.digest()
        finally:
            await app.stop()

    asyncio.run(main())


def test_campaign_validation_and_lookup_errors():
    async def main():
        app = make_app()
        await app.start(auto_tick=False)
        try:
            for bad in (
                {},                                   # no scenario
                {"scenario": "no-such-scenario"},     # unknown scenario
                dict(BODY, repeats=0),                # invalid repeats
                dict(BODY, shard=[5, 2]),             # index out of range
            ):
                status, reply = await fetch_json(
                    app.port, "/campaigns", "POST", bad)
                assert status == 400, (bad, reply)
            status, _ = await fetch_json(app.port, "/campaigns/ghost")
            assert status == 404
        finally:
            await app.stop()

    asyncio.run(main())


def test_negative_workers_normalized_to_serial():
    async def main():
        app = make_app()
        await app.start(auto_tick=False)
        try:
            body = dict(BODY, name="neg", workers=-3)
            status, reply = await fetch_json(
                app.port, "/campaigns", "POST", body)
            assert status == 202
            # Clamped to >= 1, never passed through as a bogus count
            # that would silently degrade inside the worker thread.
            assert reply["campaign"]["workers"] == 1
            record = await poll_until_settled(app.port, "neg")
            assert record["status"] == "done", record
            assert record["digest"] == run_campaign(LOCAL,
                                                    workers=1).digest()
        finally:
            await app.stop()

    asyncio.run(main())


def test_duplicate_running_campaign_is_conflict():
    async def main():
        app = make_app()
        await app.start(auto_tick=False)
        try:
            slow = dict(BODY, name="dup",
                        base_params={"seconds": 30.0},
                        grid={"nodes": [3, 4, 5]})
            status, _ = await fetch_json(app.port, "/campaigns", "POST",
                                         slow)
            assert status == 202
            status, _ = await fetch_json(app.port, "/campaigns", "POST",
                                         slow)
            assert status == 409
            record = await poll_until_settled(app.port, "dup")
            assert record["status"] == "done"
            # Settled campaigns may be re-posted (a re-run).
            status, _ = await fetch_json(app.port, "/campaigns", "POST",
                                         slow)
            assert status == 202
            await poll_until_settled(app.port, "dup")
        finally:
            await app.stop()

    asyncio.run(main())
