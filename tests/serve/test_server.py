"""End-to-end tests of the fleet server's HTTP surface.

Each test runs a real ``ServeApp`` on an ephemeral port inside its own
event loop (``auto_tick=False``: the test drives the sim by hand, so
assertions never race a background ticker).
"""

import asyncio
import json

from repro.serve import ServeApp, build_fleet

from tests.serve.conftest import fetch, fetch_json, parse_prometheus

LINK_DEGRADE = {
    "enabled": True,
    "specs": [{"kind": "link_degrade", "link": [2, 3],
               "loss_db": 80.0, "at": 0.0}],
}


def make_app(spec="chain:5", **kw):
    kw.setdefault("seed", 7)
    kw.setdefault("assess_every", 20.0)
    kw.setdefault("warm_up", 10.0)
    fleet = build_fleet(spec, **kw)
    return ServeApp([fleet]), fleet


def test_index_lists_fleets_and_endpoints():
    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            status, payload = await fetch_json(app.port, "/")
            assert status == 200
            assert payload["service"] == "repro.serve"
            (card,) = payload["fleets"]
            assert card["name"] == fleet.name
            assert card["nodes"] == len(fleet.testbed)
            assert "GET /events" in payload["endpoints"]
        finally:
            await app.stop()

    asyncio.run(main())


def test_metrics_exposition_parses_and_carries_fleet_label():
    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            fleet.advance(25.0)  # past one assessment
            status, headers, body = await fetch(app.port, "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            samples = parse_prometheus(body.decode())
            assert samples  # non-empty after traffic
            # Sim metrics carry the fleet label, sanitized names.
            assert any(k.startswith("mac_sent_frames{")
                       and 'fleet="chain5"' in k for k in samples)
            # Serve-layer samples are present.
            assert samples["serve_sse_clients"] == 0
            assert samples['serve_fleet_ticks_total{fleet="chain5"}'] == 1
            assert samples['serve_assessments_total{fleet="chain5"}'] == 1
            # Health gauges: all green = 0 on the healthy chain.
            assert samples['serve_health_status{fleet="chain5"}'] == 0
        finally:
            await app.stop()

    asyncio.run(main())


def test_health_pending_before_first_assessment_then_green():
    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            status, payload = await fetch_json(
                app.port, f"/fleets/{fleet.name}/health")
            assert status == 200
            assert payload["status"] == "pending"
            fleet.advance(25.0)
            status, payload = await fetch_json(
                app.port, f"/fleets/{fleet.name}/health")
            assert payload["status"] == "green"
            assert payload["healthy"] is True
            assert payload["assessments"] == 1
            # Every watched node and link is painted.
            assert set(payload["nodes"]) == {"1", "2", "3", "4", "5"}
            assert all(e["status"] == "green"
                       for e in payload["links"].values())
        finally:
            await app.stop()

    asyncio.run(main())


def test_fault_injection_turns_link_red_with_recommendation():
    """The acceptance path: POST a link_degrade, and within one
    assessment period /health shows the link red and says what to do."""

    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            fleet.advance(25.0)  # establish a green baseline
            status, reply = await fetch_json(
                app.port, f"/fleets/{fleet.name}/faults", "POST",
                LINK_DEGRADE)
            assert status == 202
            assert reply["queued"] is True
            assert reply["plan"]["specs"][0]["kind"] == "link_degrade"
            fleet.advance(20.0)  # exactly one assessment period
            status, payload = await fetch_json(
                app.port, f"/fleets/{fleet.name}/health")
            assert payload["status"] == "red"
            link = payload["links"]["2->3"]
            assert link["status"] == "red"
            assert link["kind"] == "broken_link"
            assert "nodes 2 and 3" in link["recommendation"]
            assert payload["recommendations"]  # plain-language advice
            # The injected plan is visible for audit.
            status, audit = await fetch_json(
                app.port, f"/fleets/{fleet.name}/faults")
            assert len(audit["plans"]) == 1
            # And the metrics gauge went red (= 2) for that link.
            _, _, body = await fetch(app.port, "/metrics")
            samples = parse_prometheus(body.decode())
            key = ('serve_health_link_status{fleet="chain5",link="2->3"}')
            assert samples[key] == 2
        finally:
            await app.stop()

    asyncio.run(main())


def test_malformed_fault_plan_rejected_with_400():
    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            for bad in (
                {"enabled": True, "specs": [{"kind": "nope"}]},
                {"enabled": True,
                 "specs": [{"kind": "link_degrade"}]},  # missing link
            ):
                status, reply = await fetch_json(
                    app.port, f"/fleets/{fleet.name}/faults", "POST", bad)
                assert status == 400
                assert "invalid fault plan" in reply["error"]
            # Not JSON at all.
            status, _, raw = await fetch(
                app.port, f"/fleets/{fleet.name}/faults", "POST",
                b"not json")
            assert status == 400
            # Nothing was queued by any of the rejects.
            status, audit = await fetch_json(
                app.port, f"/fleets/{fleet.name}/faults")
            assert audit["plans"] == []
        finally:
            await app.stop()

    asyncio.run(main())


def test_unknown_routes_and_fleets_get_404():
    async def main():
        app, _ = make_app()
        await app.start(auto_tick=False)
        try:
            status, _ = await fetch_json(app.port, "/nope")
            assert status == 404
            status, reply = await fetch_json(app.port,
                                             "/fleets/ghost/health")
            assert status == 404
            assert "ghost" in reply["error"]
        finally:
            await app.stop()

    asyncio.run(main())


def test_malformed_request_line_gets_400():
    async def main():
        app, _ = make_app()
        await app.start(auto_tick=False)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.port)
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=10)
            assert b"400" in raw.split(b"\r\n", 1)[0]
            writer.close()
        finally:
            await app.stop()

    asyncio.run(main())


def test_stats_endpoint_serves_registry_snapshot():
    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            fleet.advance(5.0)
            status, payload = await fetch_json(
                app.port, f"/fleets/{fleet.name}/stats")
            assert status == 200
            assert payload["fleet"] == fleet.name
            assert payload["counters"]  # beacon traffic counted
            assert "series" not in payload  # the cheap snapshot
            assert "packet_sha256" not in payload
            assert payload["n_packets"] > 0
        finally:
            await app.stop()

    asyncio.run(main())


def test_sse_stream_delivers_trace_health_and_finding_events():
    async def main():
        app, fleet = make_app()
        await app.start(auto_tick=False)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.port)
            writer.write(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200 OK" in head and b"text/event-stream" in head
            await asyncio.sleep(0.05)
            assert len(app.hub) == 1

            # Break a link before the first assessment: the stream must
            # carry the finding the assessor discovers.
            fleet.queue_fault_plan(LINK_DEGRADE)
            for _ in range(5):
                fleet.advance(5.0)
                await asyncio.sleep(0)

            kinds, findings = set(), []
            with_deadline = asyncio.wait_for
            while {"trace", "health", "finding"} - kinds:
                frame = await with_deadline(
                    reader.readuntil(b"\n\n"), timeout=10)
                text = frame.decode()
                kind = text.split("\n", 1)[0].removeprefix("event: ")
                kinds.add(kind)
                if kind == "finding":
                    data = text.split("data: ", 1)[1]
                    findings.append(json.loads(data))
            (finding,) = findings[:1]
            assert finding["status"] in ("red", "yellow")
            assert finding["recommendation"]
            assert finding["finding"]["kind"]
            writer.close()
        finally:
            await app.stop()

    asyncio.run(main())
