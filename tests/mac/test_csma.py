"""Unit tests for the CSMA/CA MAC."""

from repro.mac import BROADCAST, CsmaMac, Frame
from repro.radio import RadioConfig


def build_macs(world, positions):
    macs = {}
    for node_id, pos in positions.items():
        xcvr = world.medium.attach(node_id, pos, RadioConfig())
        macs[node_id] = CsmaMac(
            world.env, world.medium, xcvr, world.rng, world.monitor
        )
    return macs


def test_send_delivers_to_neighbor(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0)})
    heard = []
    macs[2].set_receive_handler(heard.append)
    macs[1].send(Frame(src=1, dst=2, payload=b"ping"))
    quiet_world.env.run(until=0.1)
    assert len(heard) == 1
    assert heard[0].payload == b"ping"


def test_broadcast_reaches_all_neighbors(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0), 3: (0, 5)})
    heard2, heard3 = [], []
    macs[2].set_receive_handler(heard2.append)
    macs[3].set_receive_handler(heard3.append)
    macs[1].send(Frame(src=1, dst=BROADCAST, payload=b"hi"))
    quiet_world.env.run(until=0.1)
    assert len(heard2) == 1 and len(heard3) == 1


def test_unicast_filtered_at_non_destination(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0), 3: (0, 5)})
    heard3 = []
    macs[3].set_receive_handler(heard3.append)
    macs[1].send(Frame(src=1, dst=2, payload=b"private"))
    quiet_world.env.run(until=0.1)
    assert heard3 == []
    assert quiet_world.monitor.counter("mac.filtered_frames") == 1


def test_queue_drains_in_order(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0)})
    heard = []
    macs[2].set_receive_handler(lambda a: heard.append(a.payload))
    for i in range(5):
        assert macs[1].send(Frame(src=1, dst=2, payload=bytes([i])))
    quiet_world.env.run(until=0.5)
    assert heard == [bytes([i]) for i in range(5)]


def test_queue_overflow_drops(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0)})
    results = [
        macs[1].send(Frame(src=1, dst=2, payload=b"x")) for _ in range(20)
    ]
    assert not all(results)
    assert quiet_world.monitor.counter("mac.queue_drops") > 0


def test_queue_occupancy_visible(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0)})
    for _ in range(4):
        macs[1].send(Frame(src=1, dst=2, payload=b"x"))
    assert macs[1].queue_occupancy >= 3  # first frame may be in CSMA already
    quiet_world.env.run(until=1.0)
    assert macs[1].queue_occupancy == 0


def test_backoff_separates_contending_senders(quiet_world):
    """Two nodes handed frames at the same instant should usually both
    succeed thanks to random initial backoff."""
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0), 3: (2.5, 2.5)})
    heard = []
    macs[3].set_receive_handler(lambda a: heard.append(a.sender))
    delivered = 0
    trials = 20
    for _ in range(trials):
        heard.clear()
        macs[1].send(Frame(src=1, dst=BROADCAST, payload=b"a" * 30))
        macs[2].send(Frame(src=2, dst=BROADCAST, payload=b"b" * 30))
        quiet_world.env.run(until=quiet_world.env.now + 0.1)
        if sorted(heard) == [1, 2]:
            delivered += 1
    assert delivered >= trials // 2


def test_sent_counter_increments(quiet_world):
    macs = build_macs(quiet_world, {1: (0, 0), 2: (5, 0)})
    macs[1].send(Frame(src=1, dst=2, payload=b"x"))
    quiet_world.env.run(until=0.1)
    assert quiet_world.monitor.counter("mac.sent_frames") == 1
    assert quiet_world.monitor.counter("mac.received_frames") == 1
