"""Unit tests for the bounded MAC transmit queue."""

import pytest

from repro.mac import TxQueue
from repro.sim import Environment


def test_put_then_get_fifo():
    env = Environment()
    q = TxQueue(env, capacity=4)
    q.put("a")
    q.put("b")
    got = []

    def consumer():
        got.append((yield q.get()))
        got.append((yield q.get()))

    env.run(until=env.process(consumer()))
    assert got == ["a", "b"]


def test_get_blocks_until_put():
    env = Environment()
    q = TxQueue(env, capacity=4)
    got = []

    def consumer():
        got.append((yield q.get()))
        return env.now

    def producer():
        yield env.timeout(2.0)
        q.put("late")

    proc = env.process(consumer())
    env.process(producer())
    assert env.run(until=proc) == 2.0
    assert got == ["late"]


def test_overflow_counts_drop_and_returns_false():
    env = Environment()
    q = TxQueue(env, capacity=2)
    assert q.put(1) and q.put(2)
    assert not q.put(3)
    assert q.drops == 1
    assert q.occupancy == 2
    assert q.is_full


def test_occupancy_and_peak():
    env = Environment()
    q = TxQueue(env, capacity=8)
    for i in range(5):
        q.put(i)
    assert q.occupancy == 5
    assert q.peak_occupancy == 5

    def consumer():
        yield q.get()

    env.run(until=env.process(consumer()))
    assert q.occupancy == 4
    assert q.peak_occupancy == 5


def test_direct_handoff_to_waiting_getter():
    env = Environment()
    q = TxQueue(env, capacity=1)
    got = []

    def consumer():
        got.append((yield q.get()))
        got.append((yield q.get()))

    env.process(consumer())
    env.run()
    # Consumer waits; both puts hand off directly even with capacity 1.
    q.put("x")
    q.put("y")
    env.run()
    assert got == ["x", "y"]
    assert q.drops == 0


def test_clear_returns_dropped_items():
    env = Environment()
    q = TxQueue(env, capacity=4)
    q.put("a")
    q.put("b")
    assert q.clear() == ["a", "b"]
    assert q.occupancy == 0


def test_snapshot_counters():
    env = Environment()
    q = TxQueue(env, capacity=2)
    q.put(1)
    q.put(2)
    q.put(3)
    snap = q.snapshot()
    assert snap == {
        "occupancy": 2, "capacity": 2, "enqueued": 2,
        "drops": 1, "peak_occupancy": 2,
    }


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        TxQueue(env, capacity=0)
