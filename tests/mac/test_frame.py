"""Unit tests for MAC frame layout and airtime."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mac import (
    BROADCAST,
    FRAME_OVERHEAD_BYTES,
    MAX_PAYLOAD_BYTES,
    Frame,
    frame_airtime,
)
from repro.units import BYTE_AIRTIME


def test_airtime_of_empty_frame_is_overhead_only():
    assert frame_airtime(0) == pytest.approx(FRAME_OVERHEAD_BYTES * BYTE_AIRTIME)


def test_airtime_scales_per_byte():
    assert frame_airtime(10) - frame_airtime(0) == pytest.approx(
        10 * BYTE_AIRTIME
    )


def test_airtime_rejects_negative():
    with pytest.raises(ValueError):
        frame_airtime(-1)


@given(st.integers(0, MAX_PAYLOAD_BYTES))
def test_airtime_positive_and_bounded(n):
    t = frame_airtime(n)
    assert 0 < t < 0.005  # even a max frame is under 5 ms at 250 kbps


def test_frame_size_accounting():
    f = Frame(src=1, dst=2, payload=b"x" * 30)
    assert f.payload_bytes == 30
    assert f.size_bytes == 30 + FRAME_OVERHEAD_BYTES


def test_frame_airtime_matches_function():
    f = Frame(src=1, dst=2, payload=b"x" * 30)
    assert f.airtime == frame_airtime(30)


def test_broadcast_flag():
    assert Frame(src=1, dst=BROADCAST, payload=b"").is_broadcast
    assert not Frame(src=1, dst=2, payload=b"").is_broadcast


def test_frame_rejects_oversize_payload():
    with pytest.raises(ValueError):
        Frame(src=1, dst=2, payload=b"x" * (MAX_PAYLOAD_BYTES + 1))


def test_frame_rejects_non_bytes_payload():
    with pytest.raises(TypeError):
        Frame(src=1, dst=2, payload="string")  # type: ignore[arg-type]


def test_frame_accepts_bytearray():
    f = Frame(src=1, dst=2, payload=bytearray(b"ab"))
    assert f.payload == b"ab"
    assert isinstance(f.payload, bytes)


def test_sequence_numbers_increase():
    a = Frame(src=1, dst=2, payload=b"")
    b = Frame(src=1, dst=2, payload=b"")
    assert b.seq > a.seq
