"""Edge-case tests for the CSMA MAC."""

from repro.mac import CsmaMac, Frame
from repro.radio import RadioConfig


def build_pair(world):
    a = world.medium.attach(1, (0.0, 0.0), RadioConfig())
    b = world.medium.attach(2, (5.0, 0.0), RadioConfig())
    mac_a = CsmaMac(world.env, world.medium, a, world.rng, world.monitor)
    mac_b = CsmaMac(world.env, world.medium, b, world.rng, world.monitor)
    return (a, mac_a), (b, mac_b)


def test_radio_off_drops_queued_frames(quiet_world):
    (a, mac_a), (b, mac_b) = build_pair(quiet_world)
    heard = []
    mac_b.set_receive_handler(heard.append)
    a.enabled = False
    mac_a.send(Frame(src=1, dst=2, payload=b"doomed"))
    quiet_world.env.run(until=1.0)
    assert heard == []
    assert quiet_world.monitor.counter("mac.radio_off_drops") == 1


def test_radio_reenabled_resumes_transmission(quiet_world):
    (a, mac_a), (b, mac_b) = build_pair(quiet_world)
    heard = []
    mac_b.set_receive_handler(heard.append)
    a.enabled = False
    mac_a.send(Frame(src=1, dst=2, payload=b"lost"))
    quiet_world.env.run(until=0.5)
    a.enabled = True
    mac_a.send(Frame(src=1, dst=2, payload=b"fine"))
    quiet_world.env.run(until=1.0)
    assert [arr.payload for arr in heard] == [b"fine"]


def test_cca_failure_after_max_backoffs(quiet_world):
    """A channel jammed by a long transmission forces channel-access
    failure after macMaxCSMABackoffs."""
    (a, mac_a), (b, mac_b) = build_pair(quiet_world)
    jammer = quiet_world.medium.attach(3, (2.0, 0.0), RadioConfig())

    def jam():
        # Back-to-back max-size frames for ~80 ms.
        for _ in range(20):
            yield quiet_world.medium.transmit(
                jammer, Frame(src=3, dst=0xFFFF, payload=bytes(110))
            )

    quiet_world.env.process(jam())
    mac_a.send(Frame(src=1, dst=2, payload=b"squeezed"))
    quiet_world.env.run(until=0.05)
    assert quiet_world.monitor.counter("mac.busy_assessments") >= 4
    # Either the frame eventually aired after the jam or CCA gave up —
    # both are valid CSMA outcomes; what must not happen is a transmit
    # *during* the jam.
    sent_times = [r.time for r in quiet_world.monitor.packets
                  if r.sender == 1]
    for t in sent_times:
        overlapping = [r for r in quiet_world.monitor.packets
                       if r.sender == 3 and r.time <= t < r.time + 0.004]
        assert not overlapping


def test_queue_capacity_parameter(quiet_world):
    a = quiet_world.medium.attach(1, (0.0, 0.0), RadioConfig())
    mac = CsmaMac(quiet_world.env, quiet_world.medium, a,
                  quiet_world.rng, quiet_world.monitor, queue_capacity=2)
    results = [mac.send(Frame(src=1, dst=0xFFFF, payload=b"x"))
               for _ in range(5)]
    assert results.count(False) >= 2
