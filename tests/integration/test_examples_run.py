"""Smoke tests: the shipped examples must run end to end.

Each example's ``main`` is imported and executed with its default seed;
these tests pin the deliverable, not the exact output.  The figure
reproduction example is exercised by the benchmark suite instead (it is
the slowest by far).
"""

import importlib.util
import io
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_main(name, capsys):
    module = load_example(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_main("quickstart", capsys)
    assert "/sn01/192.168.0.1" in out
    assert "Pinging 192.168.0.2 with 1 packets with 32 bytes:" in out
    assert "Name of protocol: geographic forwarding" in out
    assert "beacon interval set to 1000 ms" in out


def test_protocol_comparison(capsys):
    out = run_main("protocol_comparison", capsys)
    assert "geographic forwarding" in out
    assert "dsdv" in out
    assert "flooding" in out
    assert "no recompilation" in out


def test_hotspot_diagnosis(capsys):
    out = run_main("hotspot_diagnosis", capsys)
    assert "idle network, per-hop RTT" in out
    assert "hotspots flagged" in out or "no hotspots" in out
    assert "delivery ratio" in out


@pytest.mark.slow
def test_site_survey(capsys):
    out = run_main("site_survey", capsys)
    assert "broken" in out
    assert "post-fix survey" in out
    assert "healthy links:" in out


def test_live_fleet(capsys):
    out = run_main("live_fleet", capsys)
    assert "baseline health:" in out
    assert "POST /faults -> 202" in out
    assert "health after fault: red" in out
    assert "[broken_link]" in out
    assert "recommendation: Restore the path between nodes" in out


def test_mobile_patrol(capsys):
    out = run_main("mobile_patrol", capsys)
    assert "surveyor (node 7) patrols" in out
    assert "beacons in range" in out
    # The surveyor really heard links appear and die...
    assert "joins" in out and "leaves" in out
    assert "total churn over the patrol: 0 joins" not in out
    # ...and the engine did not file the churn as link faults.
    assert "0 link-degrade findings" in out
    assert "false positives vs empty fault plan: 0" in out
    assert "did not mistake mobility churn" in out


def test_interactive_shell_canned_session(capsys, monkeypatch):
    monkeypatch.setattr(sys, "stdin", io.StringIO(""))  # not a tty
    out = run_main("interactive_shell", capsys)
    assert "$ pwd" in out
    assert "/sn01/192.168.0.1" in out
    assert "channel  peak RSSI" in out
