"""Dense vs spatially-indexed candidate enumeration: byte-identical.

The spatial index is a pure pruning optimisation: it may only remove
receivers that could never pass the sensitivity check, and it must
enumerate the survivors in the same sorted-id order the dense path
uses (candidate order feeds RNG draw order).  These tests hold the
indexed medium to *byte-identical* packet digests and counter
snapshots against the dense path — on the paper's 30- and 100-node
fields (where nothing is prunable) and on a district scenario where
pruning is actually active.
"""

import pytest

from repro.core.deploy import deploy_liteview
from repro.workloads import build_city, hundred_node_field, thirty_node_field
from repro.workloads.scenarios import QUIET_PROPAGATION


def _run(factory, use_spatial_index: bool, warm_up: float = 30.0):
    testbed = factory()
    testbed.medium.use_spatial_index = use_spatial_index
    deploy_liteview(testbed, warm_up=warm_up)
    return testbed


@pytest.mark.parametrize("factory", [
    pytest.param(lambda: thirty_node_field(seed=4), id="thirty"),
    pytest.param(lambda: hundred_node_field(seed=4), id="hundred"),
])
def test_indexed_matches_dense_on_paper_fields(factory):
    dense = _run(factory, False)
    indexed = _run(factory, True)
    assert dense.monitor.packet_digest() == indexed.monitor.packet_digest()
    assert dense.monitor.counters == indexed.monitor.counters
    assert abs(dense.env.now - indexed.env.now) == 0.0
    # A compact field sits entirely inside the conservative range
    # bound, so the index prunes nothing — parity is exact, not vacuous.
    assert indexed.medium.candidates_pruned == 0


def test_indexed_matches_dense_with_pruning_active():
    def factory():
        return build_city(2, 2, 6, pitch=1500.0, seed=9,
                          propagation_kwargs=QUIET_PROPAGATION)

    dense = _run(factory, False)
    indexed = _run(factory, True)
    assert dense.monitor.packet_digest() == indexed.monitor.packet_digest()
    # The dense path books femtowatt "interference" between districts
    # that can never hear each other (every node is a candidate, so a
    # concurrent far-district frame adds ~1e-20 mW to the noise sum and
    # bumps the counter); the indexed path never enumerates those
    # receivers at all.  Every delivery-relevant observable — packet
    # digest above, every other counter here — must still match.
    dense_counters = dict(dense.monitor.counters)
    indexed_counters = dict(indexed.monitor.counters)
    assert dense_counters.pop("medium.interfered_receptions", 0) >= \
        indexed_counters.pop("medium.interfered_receptions", 0)
    assert dense_counters == indexed_counters
    # The districts sit beyond radio range of each other, so here the
    # index genuinely skipped receivers — and still changed nothing.
    assert indexed.medium.candidates_pruned > 0
    assert dense.medium.candidates_pruned == 0


def test_mobile_run_indexed_matches_dense_with_pruning_active():
    """The per-node-epoch refactor's acceptance proof: a run with
    continuous motion — patrol nodes drifting across a pruning-active
    city, crossing district gaps — is byte-identical between the
    incremental spatial path and the dense path."""
    from repro.radio import MobilityPlan, MobilitySpec, install_mobility

    plan = MobilityPlan(name="parity-patrol", specs=(
        # One node drifts from district (0,0) toward district (1,0),
        # crossing the inter-district gap (membership churn both sides).
        MobilitySpec(kind="linear_drift", at=5.0, duration=20.0,
                     nodes=(3,), velocity=(70.0, 0.0),
                     update_every=0.5),
        # Another wanders stochastically inside its own district.
        MobilitySpec(kind="random_waypoint", at=2.0, duration=25.0,
                     nodes=(8,), area=(1500.0, 0.0, 1800.0, 300.0),
                     speed=(2.0, 6.0)),
    ))

    def factory():
        testbed = build_city(2, 2, 6, pitch=1500.0, seed=9,
                             propagation_kwargs=QUIET_PROPAGATION)
        install_mobility(testbed, plan)
        return testbed

    dense = _run(factory, False)
    indexed = _run(factory, True)
    assert dense.monitor.packet_digest() == indexed.monitor.packet_digest()
    dense_counters = dict(dense.monitor.counters)
    indexed_counters = dict(indexed.monitor.counters)
    # Same femtowatt-interference caveat as the static pruning test.
    assert dense_counters.pop("medium.interfered_receptions", 0) >= \
        indexed_counters.pop("medium.interfered_receptions", 0)
    assert dense_counters == indexed_counters
    # Not vacuous: nodes really moved, pruning really ran, and the
    # moves really took the incremental path (per-node epochs), not a
    # global invalidation.
    assert indexed.monitor.counter("mobility.updates") > 50
    assert indexed.monitor.counter("medium.repositions") > 50
    assert indexed.medium.candidates_pruned > 0
    registry = indexed.monitor.registry
    rebuilds = registry.gauge("medium.idx.rebuilds").value
    assert 0 < rebuilds < indexed.monitor.counter("medium.repositions") * \
        len(indexed.nodes())


def test_candidate_gauges_and_stats_view():
    testbed = build_city(2, 1, 6, pitch=1500.0, seed=9,
                         propagation_kwargs=QUIET_PROPAGATION)
    deployment = deploy_liteview(testbed, warm_up=20.0)
    medium = testbed.medium
    total = medium.candidates_considered + medium.candidates_pruned
    assert total > 0
    # >50% pruned even on this tiny two-district city (each sender sees
    # only its own district, i.e. at most ~half the radios).
    assert medium.candidates_pruned / total > 0.5
    registry = testbed.monitor.registry
    assert registry.gauge("medium.candidates.considered").value == \
        medium.candidates_considered
    assert registry.gauge("medium.candidates.pruned").value == \
        medium.candidates_pruned
    # The shell's `stats medium.` view renders both gauges.
    deployment.login("192.168.0.1")
    view = deployment.run("stats medium.")
    assert "medium.candidates.considered" in view
    assert "medium.candidates.pruned" in view
