"""Bit-for-bit determinism against pre-vectorization golden fixtures.

``tests/golden/determinism_golden.json`` was captured from the *scalar*
per-receiver medium before the vectorized rewrite.  These tests prove
the contract the rewrite was held to: batched RNG draws, the cached
distance/path-loss matrix, and the pooled-timeout fast path change
nothing observable — same counters, same packet log, same final clock,
whether or not tracing is enabled.

If a future change legitimately alters the simulation (not just its
speed), recapture the fixture deliberately; never loosen these asserts.
"""

import hashlib
import json
import pathlib

import pytest

from repro.campaign import Campaign, run_campaign
from repro.core.deploy import deploy_liteview
from repro.workloads import QUIET_PROPAGATION, thirty_node_field
from repro.workloads.topologies import build_chain

GOLDEN_PATH = (pathlib.Path(__file__).parent.parent
               / "golden" / "determinism_golden.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _packet_digest(monitor) -> str:
    """Order-sensitive digest of the full packet log (the reference
    implementation :meth:`Monitor.packet_digest` must keep matching —
    the fixture hashes were captured with this exact encoding)."""
    h = hashlib.sha256()
    for r in monitor.packets:
        h.update(repr((r.time.hex(), r.sender, r.receiver, r.kind,
                       r.port, r.size_bytes, r.delivered)).encode())
    return h.hexdigest()


def _snapshot(testbed) -> dict:
    assert testbed.monitor.packet_digest() == _packet_digest(testbed.monitor)
    return {
        "counters": dict(sorted(testbed.monitor.counters.items())),
        "n_packets": len(testbed.monitor.packets),
        "now": testbed.env.now.hex(),
        "packet_sha256": _packet_digest(testbed.monitor),
    }


def run_thirty(seed: int, *, trace: bool = False) -> dict:
    testbed = thirty_node_field(seed=seed)
    if trace:
        testbed.tracer.enable()
    deploy_liteview(testbed, warm_up=60.0)
    return _snapshot(testbed)


def run_chain_ping() -> dict:
    testbed = build_chain(3, seed=21, propagation_kwargs=QUIET_PROPAGATION)
    deployment = deploy_liteview(testbed, warm_up=20.0)
    deployment.login("192.168.0.1")
    deployment.run("ping 192.168.0.3 round=2 port=10")
    return _snapshot(testbed)


@pytest.mark.parametrize("seed", [2, 5])
def test_thirty_node_matches_golden(seed):
    """A full 30-node minute reproduces the pre-vectorization capture."""
    assert run_thirty(seed) == GOLDEN[f"thirty_node_seed{seed}"]


def test_tracing_does_not_perturb_simulation():
    """Packet-lifecycle tracing must observe, never alter, the run."""
    assert run_thirty(2, trace=True) == GOLDEN["thirty_node_seed2"]


def test_chain_ping_matches_golden():
    """An interactive diagnosis session (login + ping) is deterministic."""
    assert run_chain_ping() == GOLDEN["chain3_ping_seed21"]


def test_same_seed_twice_is_identical():
    """Two fresh runs from one seed agree in every recorded detail."""
    assert run_thirty(5) == run_thirty(5)


# -- campaigns: sharded == serial == golden ---------------------------------

GOLDEN_CAMPAIGN = Campaign(
    name="golden", scenario="chain_beacons", seed=11,
    base_params={"seconds": 15.0}, grid={"nodes": [3, 4]}, repeats=1,
)


def _campaign_fixture_view(result) -> dict:
    return {
        "digest": result.digest(),
        "runs": [
            {"seed": r.spec.seed,
             "params": [list(p) for p in r.spec.params],
             "counters": dict(sorted(r.counters.items())),
             "packet_sha256": r.packet_sha256, "n_packets": r.n_packets,
             "sim_time": r.sim_time.hex()}
            for r in result.runs
        ],
    }


def test_serial_campaign_matches_golden():
    """Per-run seeds, counters and packet digests of a seeded campaign
    reproduce the captured fixture exactly."""
    out = run_campaign(GOLDEN_CAMPAIGN, workers=1)
    assert out.failures == []
    assert _campaign_fixture_view(out) == \
        GOLDEN["campaign_chain_beacons_seed11"]


@pytest.mark.slow
def test_sharded_campaign_is_bit_for_bit_serial():
    """The campaign sharded over a 2-worker spawn pool is bit-for-bit
    identical to the serial reference *and* to the golden capture: seed
    derivation never depends on worker count or shard order."""
    sharded = run_campaign(GOLDEN_CAMPAIGN, workers=2, mp_context="spawn")
    assert sharded.failures == []
    assert _campaign_fixture_view(sharded) == \
        GOLDEN["campaign_chain_beacons_seed11"]
