"""Protocol independence through the shell: the same commands over
different routing protocols, selected only by ``port=``."""

import pytest

from repro.core.deploy import deploy_liteview
from repro.net import (
    TREE_PORT,
    DsdvRouting,
    GeographicForwarding,
    TreeRouting,
)
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture(scope="module")
def deployment():
    testbed = build_chain(4, spacing=60.0, seed=4,
                          propagation_kwargs=QUIET_PROPAGATION)
    for node in testbed.nodes():
        node.install_protocol(GeographicForwarding)
        node.install_protocol(DsdvRouting)
        node.install_protocol(TreeRouting, root=4)
    dep = deploy_liteview(testbed, protocol=None, warm_up=40.0)
    dep.login("192.168.0.1")
    return dep


def test_traceroute_over_dsdv(deployment):
    out = deployment.run("traceroute 192.168.0.4 round=1 port=11")
    result = deployment.interpreter.last_result
    assert result.reached_target
    assert "Name of protocol: dsdv" in out
    assert result.hop_count == 3


def test_traceroute_over_geographic(deployment):
    deployment.run("traceroute 192.168.0.4 round=1 port=10")
    assert deployment.interpreter.last_result.reached_target


def test_ping_over_dsdv(deployment):
    deployment.run("ping 192.168.0.4 round=2 length=16 port=11")
    assert deployment.interpreter.last_result.received >= 1


def test_traceroute_toward_tree_root(deployment):
    """Traceroute over the collection tree: probes find the path toward
    the root hop by hop; reports toward the source are unroutable
    (trees have no downward routes), so only the local first hop comes
    back — the protocol's structure, made visible by the tool."""
    deployment.run(f"traceroute 192.168.0.4 round=1 port={TREE_PORT}")
    result = deployment.interpreter.last_result
    hops = {h.hop_index for h in result.hops}
    assert hops == {1}  # only the source's own hop report is local
    assert not result.reached_target


def test_unknown_port_is_reported(deployment):
    out = deployment.run("ping 192.168.0.4 round=1 port=99")
    assert out.startswith("error:")
    assert "99" in out
