"""End-to-end scenarios exercising the full toolkit path."""

import pytest

from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain, eight_hop_chain, thirty_node_field
from repro.workloads.scenarios import QUIET_PROPAGATION


def test_power_adjustment_changes_reported_rssi():
    """The Figure 6 mechanism: lowering TX power lowers the RSSI the
    peer reports, by roughly the PA-table difference."""
    from repro.radio import power_level_to_dbm

    testbed = build_chain(2, spacing=25.0, seed=2,
                          propagation_kwargs=QUIET_PROPAGATION)
    dep = deploy_liteview(testbed, warm_up=15.0)
    dep.login("192.168.0.1")

    def forward_rssi():
        dep.run("ping 192.168.0.2 round=5 length=32")
        result = dep.interpreter.last_result
        assert result.received >= 3
        return sum(r.link.lqi_forward * 0 + r.link.rssi_forward
                   for r in result.rounds) / result.received

    high = forward_rssi()
    dep.run("power 10")
    low = forward_rssi()
    expected_drop = power_level_to_dbm(31) - power_level_to_dbm(10)
    assert high - low == pytest.approx(expected_drop, abs=2.5)


def test_channel_change_isolates_node():
    """A node moved to another channel stops answering pings from the
    old channel — and comes back when the prober follows."""
    testbed = build_chain(2, spacing=25.0, seed=2,
                          propagation_kwargs=QUIET_PROPAGATION)
    dep = deploy_liteview(testbed, warm_up=15.0)
    node2 = testbed.node(2)
    node2.radio.set_channel(26)
    dep.login("192.168.0.1")
    dep.run("ping 192.168.0.2 round=2")
    assert dep.interpreter.last_result.received == 0
    node2.radio.set_channel(17)
    dep.run("ping 192.168.0.2 round=2")
    assert dep.interpreter.last_result.received >= 1


def test_blacklist_forces_detour():
    """Blacklisting the direct next hop makes traceroute show a longer
    path (deployment-phase rerouting the paper motivates)."""
    # Triangle: 1 and 3 are 70 m apart (direct, above the quality
    # filter), 2 sits between them slightly off-axis.
    from repro.kernel import Testbed
    from repro.core.deploy import deploy_liteview as deploy

    tb = Testbed(seed=5, propagation_kwargs=QUIET_PROPAGATION)
    tb.add_node("192.168.0.1", (0.0, 0.0))
    tb.add_node("192.168.0.2", (35.0, 12.0))
    tb.add_node("192.168.0.3", (70.0, 0.0))
    dep = deploy(tb, warm_up=15.0)
    dep.login("192.168.0.1")

    dep.run("traceroute 192.168.0.3 port=10")
    direct = dep.interpreter.last_result
    assert direct.reached_target
    assert direct.hop_count == 1  # 70 m is a usable direct link

    tb.node(1).neighbors.blacklist(3)
    dep.run("traceroute 192.168.0.3 port=10")
    detour = dep.interpreter.last_result
    assert detour.reached_target
    assert detour.hop_count == 2  # now via node 2


def test_thirty_node_field_management_walk():
    """Manage several nodes of the 30-node testbed in one session."""
    testbed = thirty_node_field(seed=3)
    dep = deploy_liteview(testbed, warm_up=15.0)
    managed = 0
    for name in ["192.168.0.1", "192.168.0.15", "192.168.0.30"]:
        dep.login(name)
        out = dep.run("power")
        assert out == "Power = 31, Channel = 17"
        dep.run("neighborsetup")
        listing = dep.run("list")
        assert "LQI" in listing
        dep.run("exit")
        managed += 1
    assert managed == 3


def test_eight_hop_traceroute_through_shell():
    testbed = eight_hop_chain(seed=4)
    dep = deploy_liteview(testbed, warm_up=15.0)
    dep.login("192.168.0.1")
    out = dep.run("traceroute 192.168.0.9 round=1 length=32 port=10")
    result = dep.interpreter.last_result
    assert result.reached_target
    assert result.hop_count == 8
    assert "Reply from 192.168.0.9" in out


def test_zero_overhead_when_inactive():
    """Design goal 'Efficiency': installed-but-idle LiteView sends no
    packets beyond the kernel's own beacons."""
    testbed = build_chain(3, seed=2, propagation_kwargs=QUIET_PROPAGATION)
    deploy_liteview(testbed, warm_up=30.0)
    kinds = {r.kind for r in testbed.monitor.packets}
    assert kinds <= {"beacon"}


def test_deterministic_replay():
    """Identical seeds reproduce identical shell outputs bit-for-bit."""

    def run_once():
        testbed = build_chain(3, seed=11,
                              propagation_kwargs=QUIET_PROPAGATION)
        dep = deploy_liteview(testbed, warm_up=15.0)
        dep.login("192.168.0.1")
        return dep.run("ping 192.168.0.2 round=3 length=32")

    assert run_once() == run_once()
