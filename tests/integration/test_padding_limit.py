"""The padding hop budget, live on a 26-hop chain (§IV-C.3, §III-B.4).

Paper: a 16-byte probe "could at most travel 24 hops before the padding
runs out of space", and traceroute, which needs no padding, "is more
scalable compared to the ping command".

Measured through the real stack:

* one-way, a padded 16-byte payload records 23 hops (the routing layer's
  2-byte data header costs one slot against the paper's bare-payload 24);
* the ping *round trip* shares one padding region between the forward
  and backward paths, so padded pings top out near 13-hop paths;
* traceroute reaches the full 26-hop destination.
"""

import pytest

from repro.core.commands.ping import install_ping
from repro.core.commands.traceroute import install_traceroute
from repro.net import GeographicForwarding
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture(scope="module")
def long_chain():
    testbed = build_chain(27, spacing=60.0, seed=5,
                          propagation_kwargs=QUIET_PROPAGATION)
    testbed.install_protocol_everywhere(GeographicForwarding)
    pings = {n.id: install_ping(n) for n in testbed.nodes()}
    traces = {n.id: install_traceroute(n) for n in testbed.nodes()}
    testbed.warm_up(15.0)
    return testbed, pings, traces


def run_ping(testbed, pings, target, attempts=4):
    """Best result over a few attempts (per-hop loss is nonzero on long
    paths; the padding limit must dominate, not chance loss)."""
    result = None
    for _ in range(attempts):
        proc = testbed.env.process(
            pings[1].ping(target, rounds=1, length=16, routing_port=10)
        )
        result = testbed.env.run(until=proc)
        if result.received:
            return result
    return result


def test_one_way_padding_records_23_hops(long_chain):
    """A padded 16-byte payload delivered 23 hops out arrives with every
    hop recorded; at 24 hops the region overflows and the packet dies."""
    testbed, _pings, _traces = long_chain
    got = []
    for node in testbed.nodes():
        node.stack.ports.subscribe(99, lambda p, a: got.append(p),
                                   name="sink")
    protocol = testbed.node(1).protocol_on(10)

    def send_to(target, attempts=4):
        got.clear()
        for _ in range(attempts):
            protocol.send(target, 99, b"p" * 16, padding=True, ttl=40)
            testbed.warm_up(3.0)
            if got:
                return got[0]
        return None

    delivered = send_to(24)  # 23 hops
    assert delivered is not None
    assert len(delivered.hop_quality) == 23

    before = testbed.monitor.counter("routing.padding_drops")
    assert send_to(25) is None  # 24 hops: one slot short
    assert testbed.monitor.counter("routing.padding_drops") > before


def test_ping_round_trip_within_shared_budget(long_chain):
    """A 13-hop path round-trips with the full forward+backward record
    in one padding region."""
    testbed, pings, _traces = long_chain
    result = run_ping(testbed, pings, 14)  # 13 hops out
    assert result.received == 1
    [r] = result.rounds
    assert len(r.forward_path) == 13
    assert len(r.backward_path) == 13


def test_ping_dies_beyond_the_round_trip_budget(long_chain):
    testbed, pings, _traces = long_chain
    before = testbed.monitor.counter("routing.padding_drops")
    result = run_ping(testbed, pings, 16, attempts=3)  # 15 hops out
    assert result.received == 0
    assert testbed.monitor.counter("routing.padding_drops") > before


def test_traceroute_covers_what_ping_cannot(long_chain):
    """Traceroute needs no padding, so the full 26-hop destination is
    reachable — the scalability argument of §III-B.4."""
    testbed, _pings, traces = long_chain
    result = None
    for _ in range(4):
        proc = testbed.env.process(
            traces[1].traceroute(27, rounds=1, length=32, routing_port=10,
                                 timeout=15.0)
        )
        result = testbed.env.run(until=proc)
        if result.reached_target:
            break
    assert result.reached_target
    assert result.hop_count == 26
