"""Synthetic scenario callables for pool/runner tests.

Referenced by ``"tests.campaign._pool_scenarios:<name>"`` module:function
specs so warm-pool worker processes can re-import them; none of them
build a testbed — they return plain value dicts, which ``execute_spec``
accepts — because what the tests exercise is the machinery *around* a
run, not the simulator.
"""

import os
import time


def flaky_once(seed, *, marker_dir, cell=0):
    """Fail the first attempt, succeed ever after.

    Cross-process deterministic: the first attempt leaves a marker file
    (keyed by seed and cell so grid cells fail independently), so the
    retry — wherever it executes — sees it and succeeds.
    """
    marker = os.path.join(marker_dir, f"flaky-{seed}-{cell}")
    if os.path.exists(marker):
        return {"succeeded_on_retry": True, "cell": cell}
    with open(marker, "w"):
        pass
    raise RuntimeError("first attempt fails by design")


def sleepy(seed, *, duration=0.05):
    """Sleep ``duration`` seconds — a task with a knowable cost — and
    report which process ran it (stealing/overlap checks)."""
    time.sleep(float(duration))
    return {"slept": float(duration), "pid": os.getpid()}


def hard_crash(seed, *, cell=0, crash_cell=0):
    """Kill the whole worker process for one cell (no exception, no
    cleanup — the way an OOM kill looks to the parent)."""
    if int(cell) == int(crash_cell):
        os._exit(3)
    return {"cell": cell}


def crash_once(seed, *, marker_dir, cell=0, crash_cell=0):
    """Kill the worker on the *first* attempt at one cell only.

    The marker file makes the crash single-shot across processes, so
    the runner's retry ladder — which treats a worker death like any
    other failure — can be observed succeeding on attempt 2.
    """
    marker = os.path.join(marker_dir, f"crash-{seed}-{cell}")
    if int(cell) == int(crash_cell) and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(3)
    return {"cell": cell, "recovered": int(cell) == int(crash_cell)}


def echo_pid(seed, **params):
    """Report which process ran the cell (warm-pool reuse checks)."""
    return {"pid": os.getpid(), **{k: v for k, v in params.items()}}
