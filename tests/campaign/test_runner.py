"""Runner behaviour: sharding, caching, failures, timeouts, progress.

The expensive bit-for-bit sharded-vs-serial campaign assertion lives
with the golden determinism suite
(``tests/integration/test_golden_determinism.py``); these tests cover
the runner's mechanics on campaigns small enough to stay fast.
"""

import pickle

import pytest

from repro.campaign import (
    Campaign,
    ResultCache,
    RunResult,
    execute_spec,
    run_campaign,
    scenario_names,
)
from repro.campaign.cache import code_fingerprint

TINY = Campaign(
    name="tiny", scenario="chain_beacons", seed=5,
    base_params={"seconds": 5.0}, grid={"nodes": [3, 4]}, repeats=1,
)


def test_execute_spec_returns_plain_picklable_result():
    spec = TINY.expand()[0]
    result = execute_spec(spec)
    assert result.ok
    assert result.counters["medium.transmissions"] > 0
    assert result.packet_sha256 and result.n_packets > 0
    assert result.sim_time > 0
    assert result.metrics["counters"] == result.counters
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result


def test_serial_campaign_results_in_expansion_order():
    out = run_campaign(TINY, workers=1)
    assert [r.spec for r in out.runs] == TINY.expand()
    assert out.failures == []
    assert out.wall_s > 0 and out.workers == 1


def test_run_twice_is_identical():
    assert run_campaign(TINY, workers=1).digest() == \
        run_campaign(TINY, workers=1).digest()


def test_cache_hits_skip_execution_and_preserve_results(tmp_path):
    first = run_campaign(TINY, workers=1, cache=tmp_path)
    assert first.n_cached == 0
    second = run_campaign(TINY, workers=1, cache=tmp_path)
    assert second.n_cached == len(second.runs)
    assert second.digest() == first.digest()
    for a, b in zip(first.runs, second.runs):
        assert b.cached and b.as_cached() == b
        assert (a.counters, a.packet_sha256, a.values, a.sim_time) == \
            (b.counters, b.packet_sha256, b.values, b.sim_time)


def test_cache_key_includes_code_fingerprint(tmp_path):
    run_campaign(TINY, workers=1, cache=tmp_path)
    stale = ResultCache(tmp_path, code_hash="different-code")
    assert run_campaign(TINY, workers=1, cache=stale).n_cached == 0
    fresh = ResultCache(tmp_path, code_hash=code_fingerprint())
    assert run_campaign(TINY, workers=1,
                        cache=fresh).n_cached == len(TINY.expand())


def test_cache_ignores_corrupt_entries(tmp_path):
    run_campaign(TINY, workers=1, cache=tmp_path)
    for path in tmp_path.rglob("*.json"):
        path.write_text("{not json")
    again = run_campaign(TINY, workers=1, cache=tmp_path)
    assert again.n_cached == 0 and again.failures == []


def test_failed_runs_are_reported_not_fatal():
    bad = Campaign(name="bad", scenario="beacon_field", seed=1,
                   grid={"nodes": [3, 7]})  # both unsupported sizes
    out = run_campaign(bad, workers=1, retries=2)
    assert len(out.failures) == 2 and out.ok == []
    for run in out.failures:
        assert run.attempts == 3          # 1 try + 2 retries, then settle
        assert "beacon_field supports" in run.error
    # Failures are never written to a cache.
    assert not out.runs[0].cached


def test_per_run_timeout_becomes_an_error_result():
    slow = Campaign(name="slow", scenario="beacon_field", seed=1,
                    base_params={"nodes": 30, "minutes": 60.0})
    out = run_campaign(slow, workers=1, timeout_s=0.2, retries=0)
    assert len(out.failures) == 1
    assert "timeout" in out.failures[0].error


def test_progress_callback_sees_every_run(tmp_path):
    seen = []
    run_campaign(TINY, workers=1, cache=tmp_path,
                 progress=lambda done, total, r: seen.append((done, total,
                                                              r.cached)))
    assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
    assert all(not cached for _, _, cached in seen)
    seen.clear()
    run_campaign(TINY, workers=1, cache=tmp_path,
                 progress=lambda done, total, r: seen.append((done, total,
                                                              r.cached)))
    assert all(cached for _, _, cached in seen)


def test_unknown_scenario_is_a_per_run_error():
    out = run_campaign(Campaign(name="x", scenario="nope", seed=0),
                       workers=1, retries=0)
    assert len(out.failures) == 1
    assert "unknown scenario" in out.failures[0].error


def test_builtin_scenarios_registered():
    names = scenario_names()
    for expected in ("beacon_field", "chain_beacons", "fig5_traceroute",
                     "fig6_rssi_sweep", "fig7_overhead", "protocol_ping",
                     "lqi_ablation"):
        assert expected in names


def test_result_value_lookup_prefers_scenario_values():
    result = RunResult(spec=TINY.expand()[0],
                       counters={"x": 1, "only_counter": 7},
                       values={"x": 2.5})
    assert result.value("x") == 2.5
    assert result.value("only_counter") == 7
    assert result.value("missing", -1) == -1


def _flaky(name, seed, marker_dir, cells=2):
    return Campaign(
        name=name, scenario="tests.campaign._pool_scenarios:flaky_once",
        seed=seed, grid={"cell": list(range(cells))},
        base_params={"marker_dir": str(marker_dir)},
    )


def test_cached_rereads_report_true_attempt_counts(tmp_path):
    """Regression: ``attempts`` must be threaded onto the result before
    the cache put, so a run that failed once and succeeded on retry
    reads back from the cache as ``attempts=2``, not ``attempts=1``."""
    cache, markers = tmp_path / "cache", tmp_path / "markers"
    markers.mkdir()
    first = run_campaign(_flaky("flaky", 3, markers), workers=1,
                         cache=cache, retries=1)
    assert first.failures == []
    assert all(r.attempts == 2 for r in first.runs)
    again = run_campaign(_flaky("flaky", 3, markers), workers=1,
                         cache=cache, retries=1)
    assert again.n_cached == len(again.runs)
    assert all(r.attempts == 2 for r in again.runs)  # the regression


def test_cached_attempt_counts_survive_the_pool_path(tmp_path):
    """Same property when the retries and cache puts happen inside warm
    pool workers rather than the parent."""
    cache, markers = tmp_path / "cache", tmp_path / "markers"
    markers.mkdir()
    first = run_campaign(_flaky("flaky-pool", 4, markers, cells=4),
                         workers=2, cache=cache, retries=1)
    assert first.failures == []
    assert all(r.attempts == 2 for r in first.runs)
    again = run_campaign(_flaky("flaky-pool", 4, markers, cells=4),
                         workers=2, cache=cache, retries=1)
    assert again.n_cached == len(again.runs)
    assert all(r.attempts == 2 for r in again.runs)


def test_cache_get_many_prefetches_in_spec_order(tmp_path):
    cache = ResultCache(tmp_path)
    specs = TINY.expand()
    assert cache.get_many(specs) == [None] * len(specs)
    out = run_campaign(TINY, workers=1, cache=cache)
    hits = cache.get_many(specs)
    assert [h.spec for h in hits] == specs
    assert all(h.cached for h in hits)
    assert [h.counters for h in hits] == [r.counters for r in out.runs]
    # A miss in the middle stays a None, in place.
    stranger = Campaign(name="t", scenario="chain_beacons", seed=404,
                        base_params={"seconds": 4.0}).expand()[0]
    mixed = cache.get_many([specs[0], stranger, specs[1]])
    assert mixed[0] is not None and mixed[2] is not None
    assert mixed[1] is None


@pytest.mark.slow
def test_sharded_spawn_pool_matches_serial():
    """Two spawn workers produce byte-identical results to in-process
    serial execution (the cheap version of the golden assertion)."""
    serial = run_campaign(TINY, workers=1)
    sharded = run_campaign(TINY, workers=2, mp_context="spawn")
    assert sharded.digest() == serial.digest()
