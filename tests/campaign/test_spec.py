"""Campaign expansion and the deterministic seed-derivation contract."""

import pytest

from repro.campaign import Campaign, RunSpec, derive_seed


def test_grid_times_repeats_expansion_order():
    camp = Campaign(
        name="c", scenario="chain_beacons", seed=3,
        base_params={"seconds": 5.0},
        grid={"nodes": [3, 4], "spacing": [50.0, 60.0]}, repeats=2,
    )
    specs = camp.expand()
    assert len(specs) == len(camp) == 2 * 2 * 2
    # Cells iterate in sorted-parameter-name, given-value order; within a
    # cell, replicates count up.
    cells = [(s.params, s.replicate) for s in specs]
    assert cells[0] == ((("nodes", 3), ("seconds", 5.0), ("spacing", 50.0)), 0)
    assert cells[1] == ((("nodes", 3), ("seconds", 5.0), ("spacing", 50.0)), 1)
    assert cells[2] == ((("nodes", 3), ("seconds", 5.0), ("spacing", 60.0)), 0)
    assert specs[-1].params == (("nodes", 4), ("seconds", 5.0),
                                ("spacing", 60.0))


def test_seed_depends_only_on_identity_not_order():
    """The seed of a cell is the same whatever else the campaign sweeps —
    so shard order and worker count can never change any run's world."""
    small = Campaign(name="a", scenario="s", seed=9, grid={"p": [1]},
                     repeats=1)
    large = Campaign(name="b", scenario="s", seed=9,
                     grid={"p": [5, 3, 1, 2]}, repeats=4)
    seed_small = small.expand()[0].seed
    matching = [s for s in large.expand()
                if s.params == (("p", 1),) and s.replicate == 0]
    assert len(matching) == 1
    assert matching[0].seed == seed_small


def test_seed_components_all_matter():
    base = derive_seed(1, "s", {"p": 1}, 0)
    assert derive_seed(2, "s", {"p": 1}, 0) != base      # campaign seed
    assert derive_seed(1, "t", {"p": 1}, 0) != base      # scenario
    assert derive_seed(1, "s", {"p": 2}, 0) != base      # params
    assert derive_seed(1, "s", {"p": 1}, 1) != base      # replicate
    # Param *order* must not matter — the encoding is canonical.
    assert derive_seed(1, "s", {"a": 1, "b": 2}, 0) == \
        derive_seed(1, "s", {"b": 2, "a": 1}, 0)


def test_seed_values_pinned():
    """Regression-pin a few derived seeds: any change to the derivation
    breaks every cache entry and golden campaign fixture, so it must be
    deliberate."""
    assert derive_seed(0, "chain_beacons", {}, 0) == \
        2525379836886945390
    assert derive_seed(7, "chain_beacons", {"nodes": 3, "seconds": 10.0},
                       0) == 8966165095890916921
    assert derive_seed(7, "chain_beacons", {"nodes": 3, "seconds": 10.0},
                       1) == 563282250921262799


def test_seeds_are_valid_and_distinct():
    camp = Campaign(name="c", scenario="s", seed=123,
                    grid={"x": list(range(8))}, repeats=8)
    seeds = [s.seed for s in camp.expand()]
    assert len(set(seeds)) == len(seeds)
    assert all(0 <= s < 2 ** 63 for s in seeds)


def test_base_and_grid_params_must_not_overlap():
    with pytest.raises(ValueError):
        Campaign(name="c", scenario="s", base_params={"x": 1},
                 grid={"x": [1, 2]})


def test_runspec_roundtrips_through_dict():
    spec = Campaign(name="c", scenario="s", seed=2,
                    grid={"x": [1]}, repeats=1).expand()[0]
    assert RunSpec.from_dict(spec.to_dict()) == spec
