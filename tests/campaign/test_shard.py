"""Shard-out determinism: any partition, any merge order, same digest.

The property the scale-out story rests on: ``Campaign.shard(k, of)``
cuts a campaign into deterministic slices whose independently-computed
results, merged in **any** order, are byte-identical (digest and all)
to the single-machine serial run — including when a fault plan is a
campaign dimension.
"""

import random

import pytest

from repro.campaign import Campaign, merge_shards, run_campaign
from repro.faults import FaultPlan, FaultSpec

#: 3 x 3 grid x 2 repeats = 18 cells, the partition property's subject.
GRID33 = Campaign(
    name="grid33", scenario="chain_beacons", seed=11,
    grid={"nodes": [3, 4, 5], "seconds": [4.0, 5.0, 6.0]}, repeats=2,
)

CHAOS = Campaign(
    name="chaos-shard", scenario="chain_beacons", seed=7,
    base_params={"seconds": 5.0}, grid={"nodes": [3, 4]}, repeats=2,
    fault_plan=FaultPlan(name="shard-chaos", specs=(
        FaultSpec(kind="link_degrade", at=2.0, duration=6.0, link=(1, 2),
                  loss_db=40.0),
    )),
)


def _run_all_shards(campaign, of):
    """Every shard, serially, returned in shuffled (arrival) order."""
    results = [run_campaign(campaign.shard(k, of), workers=1)
               for k in range(of)]
    random.Random(of).shuffle(results)
    return results


# -- the partition itself ----------------------------------------------------


def test_shards_partition_the_expansion():
    specs = GRID33.expand()
    assert len(specs) == len(GRID33) == 18
    for of in (1, 2, 3, 5, 18, 19):
        shards = [GRID33.shard(k, of) for k in range(of)]
        pieces = [s.expand() for s in shards]
        # Disjoint cover of the full expansion, sizes as advertised.
        flat = [spec for piece in pieces for spec in piece]
        assert sorted(flat, key=specs.index) == specs
        assert len(set(flat)) == len(specs)
        assert [len(p) for p in pieces] == [len(s) for s in shards]
    # Round-robin: shard k takes positions k, k+of, k+2*of, ...
    assert GRID33.shard(1, 4).expand() == specs[1::4]


def test_shard_validation():
    with pytest.raises(ValueError):
        GRID33.shard(0, 0)
    with pytest.raises(ValueError):
        GRID33.shard(-1, 3)
    with pytest.raises(ValueError):
        GRID33.shard(3, 3)


def test_shard_identity_travels_on_the_result():
    out = run_campaign(GRID33.shard(2, 9), workers=1)
    assert out.shard == (2, 9)
    assert out.name == GRID33.name
    assert run_campaign(
        Campaign(name="t", scenario="chain_beacons", seed=1,
                 base_params={"seconds": 4.0})).shard is None


# -- merged == serial, bit for bit -------------------------------------------


@pytest.mark.parametrize("of", [1, 2, 3, 5])
def test_any_partition_merges_to_the_serial_digest(of):
    serial = run_campaign(GRID33, workers=1)
    merged = merge_shards(GRID33, _run_all_shards(GRID33, of))
    assert merged.digest() == serial.digest()
    assert [r.spec for r in merged.runs] == GRID33.expand()
    assert merged.shard is None
    assert merged.workers >= 1 and merged.wall_s > 0


def test_merge_handles_list_valued_params():
    """Grid values may be lists (``canonical_params`` allows JSON
    scalars *and* lists), which makes ``RunSpec`` unhashable — the
    merge keys cells canonically, so such campaigns still reassemble."""
    listy = Campaign(
        name="listy", scenario="tests.campaign._pool_scenarios:echo_pid",
        seed=13, grid={"weights": [[1, 2], [3, 4], [5, 6]]}, repeats=2,
    )
    serial = run_campaign(listy, workers=1)
    assert serial.failures == []
    merged = merge_shards(listy, _run_all_shards(listy, 2))
    assert merged.digest() == serial.digest()


def test_sharding_with_a_fault_plan_stays_deterministic():
    serial = run_campaign(CHAOS, workers=1)
    merged = merge_shards(CHAOS, _run_all_shards(CHAOS, 3))
    assert merged.digest() == serial.digest()


def test_sharded_warm_pool_matches_serial_digest():
    """Shard + warm pool compose: each shard may use any worker count."""
    serial = run_campaign(GRID33, workers=1)
    results = [run_campaign(GRID33.shard(k, 2), workers=2)
               for k in range(2)]
    merged = merge_shards(GRID33, results)
    assert merged.digest() == serial.digest()
    assert merged.workers == 2


# -- strictness of the merge -------------------------------------------------


def test_merge_rejects_missing_shard():
    results = _run_all_shards(GRID33, 3)[:-1]
    with pytest.raises(ValueError, match="covered by no shard"):
        merge_shards(GRID33, results)


def test_merge_rejects_duplicate_coverage():
    results = _run_all_shards(GRID33, 3)
    with pytest.raises(ValueError, match="more than one shard"):
        merge_shards(GRID33, results + [results[0]])


def test_merge_rejects_foreign_runs():
    other = Campaign(
        name="grid33", scenario="chain_beacons", seed=99,  # other seeds
        grid={"nodes": [3, 4, 5], "seconds": [4.0, 5.0, 6.0]}, repeats=2,
    )
    foreign = run_campaign(other.shard(0, 9), workers=1)
    with pytest.raises(ValueError, match="belongs to no cell"):
        merge_shards(GRID33, [foreign])
