"""The warm worker pool: reuse, stealing, crash recovery, cache visibility.

These tests share one process-wide pool (``get_warm_pool``) on purpose —
pool persistence across campaigns *is* the feature under test.  The
synthetic scenarios live in ``tests/campaign/_pool_scenarios.py`` as
``module:function`` references so worker processes can import them.
"""

import multiprocessing
import os
import threading

import pytest

from repro.campaign import (
    Campaign,
    default_workers,
    get_warm_pool,
    run_campaign,
)
from repro.campaign.pool import _chunk_size, _claim, resolve_start_method

TINY = Campaign(
    name="tiny", scenario="chain_beacons", seed=5,
    base_params={"seconds": 5.0}, grid={"nodes": [3, 4]}, repeats=1,
)

SCN = "tests.campaign._pool_scenarios"


def pool2():
    pool = get_warm_pool(2, "auto")
    assert pool is not None, "no multiprocessing context available"
    return pool


# -- scheduling arithmetic ---------------------------------------------------


def test_chunk_size_is_guided():
    # Big early chunks shrink toward the tail; never zero, never huge.
    assert _chunk_size(1000, 4, max_chunk=32) == 32
    assert _chunk_size(100, 4) == 6
    assert _chunk_size(7, 4) == 1
    assert _chunk_size(1, 1) == 1


def _claim_state(n_workers, n_tasks):
    ctx = multiprocessing.get_context()
    lock = ctx.Lock()
    head = ctx.Value("l", 0, lock=False)
    batch_n = ctx.Value("l", n_tasks, lock=False)
    shared_id = ctx.Value("l", 1, lock=False)
    reserved = ctx.Array("l", [0] * (2 * n_workers), lock=False)
    current = ctx.Array("l", [-1] * n_workers, lock=False)

    def claim(worker, batch_id=1):
        return _claim(worker, n_workers, lock, head, batch_n, reserved,
                      current, batch_id, shared_id)

    return claim, reserved


def test_claim_chunks_then_steals_from_victim_tail():
    claim, reserved = _claim_state(n_workers=2, n_tasks=32)
    # Worker 0 claims the first guided chunk [0, 4): executes 0, holds
    # [1, 4) as its visible, steal-able reserved range.
    assert claim(0) == 0
    assert (reserved[0], reserved[1]) == (1, 4)
    # Worker 1 claims the next chunk [4, 7).
    assert claim(1) == 4
    # Worker 1 drains its own range and then the whole shared cursor;
    # once the cursor is dry its next claim must STEAL from the tail of
    # worker 0's still-reserved [1, 4) range -> position 3.
    claimed_by_1 = []
    while True:
        pos = claim(1)
        assert pos is not None, "cursor dry but victim range not stolen"
        claimed_by_1.append(pos)
        if pos == 3:
            break
    # The steal shrank the victim's range from its tail, not its head.
    assert (reserved[0], reserved[1]) == (1, 3)
    # The victim keeps working its (shrunk) range unperturbed.
    assert claim(0) == 1
    assert claim(0) == 2
    # Everything claimed exactly once, nothing left for anyone.
    all_claims = {0, 4, 1, 2, *claimed_by_1}
    while (pos := claim(1)) is not None:
        all_claims.add(pos)
    assert claim(0) is None
    assert all_claims == set(range(32))
    assert len(claimed_by_1) == len(set(claimed_by_1))


def test_claim_rejects_stale_batch_epoch():
    claim, _ = _claim_state(n_workers=2, n_tasks=4)
    assert claim(0, batch_id=99) is None   # not the live batch
    assert claim(0, batch_id=1) == 0       # the live batch proceeds


# -- the pool end to end -----------------------------------------------------


def test_warm_pool_matches_serial_digest():
    serial = run_campaign(TINY, workers=1)
    parallel = run_campaign(TINY, workers=2)
    assert parallel.digest() == serial.digest()
    assert parallel.failures == [] and parallel.workers == 2


def test_pool_persists_across_campaigns():
    pool = pool2()
    pool.warm(timeout_s=180.0)
    pids_before = set(pool.pids())
    assert len(pids_before) == 2
    first = run_campaign(Campaign(
        name="pids-a", scenario=f"{SCN}:echo_pid", seed=1,
        grid={"cell": list(range(6))}), workers=2)
    second = run_campaign(Campaign(
        name="pids-b", scenario=f"{SCN}:echo_pid", seed=2,
        grid={"cell": list(range(6))}), workers=2)
    worker_pids = {r.values["pid"] for r in first.ok + second.ok}
    # Same warm processes serviced both campaigns; none run in-parent.
    assert worker_pids <= pids_before
    assert set(pool.pids()) == pids_before
    assert os.getpid() not in worker_pids


def test_concurrent_campaigns_on_one_pool_stay_isolated():
    """Two threads running campaigns on the SAME pool (the serve layer
    does exactly this for concurrent ``POST /campaigns``) serialize at
    the pool's batch lock: neither receives the other's results at its
    own indices, and neither spins forever on tasks the other consumed.
    """
    pool = pool2()
    pool.warm(timeout_s=180.0)
    camps = {
        key: Campaign(name=f"conc-{key}", scenario=f"{SCN}:echo_pid",
                      seed=seed, grid={"cell": list(range(8))})
        for key, seed in (("a", 21), ("b", 22))
    }
    out = {}

    def run(key):
        out[key] = run_campaign(camps[key], workers=2, pool=pool)

    threads = [threading.Thread(target=run, args=(key,), daemon=True)
               for key in camps]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180.0)
    assert all(not t.is_alive() for t in threads), "a campaign hung"
    for key, camp in camps.items():
        result = out[key]
        assert result.failures == []
        assert result.digest() == run_campaign(camp, workers=1).digest()


def test_registry_keeps_one_pool_per_method(monkeypatch):
    """Varying worker counts must not accumulate worker sets: the
    registry holds one pool per start method, grows it to the max
    requested size, and shares it with smaller requests."""
    from repro.campaign import pool as pool_mod
    monkeypatch.setattr(pool_mod, "_POOLS", {})
    try:
        first = get_warm_pool(1, "auto")
        assert first is not None and first.workers == 1
        assert get_warm_pool(1, "auto") is first
        grown = get_warm_pool(2, "auto")
        assert grown is not first and grown.workers == 2
        assert first.closed
        # A smaller request shares the bigger pool instead of creating
        # (and leaking) a size-keyed sibling.
        assert get_warm_pool(1, "auto") is grown
        assert list(pool_mod._POOLS.values()) == [grown]
    finally:
        for p in pool_mod._POOLS.values():
            p.close()


def test_uneven_cells_overlap_across_workers():
    """One expensive cell plus many cheap ones on two workers: the
    cheap cells keep flowing while the slow cell runs, so wall-clock
    stays well under the serial sum (sleeps overlap even on one CPU)."""
    pool = pool2()
    pool.warm(timeout_s=180.0)
    durations = [0.3] + [0.05] * 8  # serial sum: 0.7 s
    out = run_campaign(Campaign(
        name="steal", scenario=f"{SCN}:sleepy", seed=3,
        grid={"duration": durations}), workers=2, pool=pool)
    assert out.failures == []
    assert len(out.runs) == len(durations)
    # Both warm workers actually serviced the batch...
    assert len({r.values["pid"] for r in out.ok}) == 2
    # ...and their sleeps overlapped: well under executing all serially.
    assert out.wall_s < 0.6


def test_worker_death_is_contained_and_pool_refills():
    pool = pool2()
    out = run_campaign(Campaign(
        name="crashy", scenario=f"{SCN}:hard_crash", seed=4,
        grid={"cell": list(range(6))}, base_params={"crash_cell": 2}),
        workers=2, pool=pool, retries=0)
    (failure,) = out.failures
    assert failure.spec.params_dict["cell"] == 2
    assert "died" in failure.error
    assert len(out.ok) == 5          # every other cell still settled
    # The pool refilled the dead slot and serves the next campaign.
    after = run_campaign(TINY, workers=2, pool=pool)
    assert after.failures == []
    assert after.digest() == run_campaign(TINY, workers=1).digest()
    assert pool.alive == 2


def test_worker_death_feeds_the_retry_ladder(tmp_path):
    """A worker death is a failure like any other: the cell is retried,
    and when the crash was transient the retry succeeds (attempts=2)."""
    pool = pool2()
    out = run_campaign(Campaign(
        name="crash-retry", scenario=f"{SCN}:crash_once", seed=6,
        grid={"cell": list(range(4))},
        base_params={"marker_dir": str(tmp_path), "crash_cell": 1}),
        workers=2, pool=pool, retries=1)
    assert out.failures == []
    (recovered,) = [r for r in out.runs if r.spec.params_dict["cell"] == 1]
    assert recovered.values["recovered"] is True
    assert recovered.attempts == 2
    assert all(r.attempts == 1 for r in out.runs if r is not recovered)


def test_pool_unavailable_context_returns_none():
    assert get_warm_pool(2, "definitely-not-a-start-method") is None
    with pytest.raises(RuntimeError):
        from repro.campaign.pool import WarmPool
        WarmPool(2, "definitely-not-a-start-method")


def test_resolve_auto_prefers_forkserver_or_spawn():
    method = resolve_start_method("auto")
    assert method in ("forkserver", "spawn", "fork")
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods and method != "fork":
        assert method == "forkserver"


# -- worker-count policy -----------------------------------------------------


def test_default_workers_honors_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_WORKERS", "0")     # clamped to >= 1
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "-2")
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")  # ignored
    detected = default_workers()
    assert detected >= 1
    monkeypatch.delenv("REPRO_WORKERS")
    assert default_workers() == detected  # env gone == env unparsable


# -- worker-visible cache ----------------------------------------------------


def test_workers_fill_and_reuse_the_shared_cache(tmp_path):
    campaign = Campaign(name="shared-cache", scenario="chain_beacons",
                        seed=6, base_params={"seconds": 4.0},
                        grid={"nodes": [3, 4]}, repeats=2)
    first = run_campaign(campaign, workers=2, cache=tmp_path)
    assert first.n_cached == 0 and first.failures == []
    # Entries written by worker processes, readable by anyone.
    assert list(tmp_path.rglob("*.json"))
    second = run_campaign(campaign, workers=2, cache=tmp_path)
    assert second.n_cached == len(second.runs)
    assert second.digest() == first.digest()


@pytest.mark.slow
def test_explicit_spawn_pool_still_supported():
    out = run_campaign(TINY, workers=2, mp_context="spawn")
    assert out.digest() == run_campaign(TINY, workers=1).digest()
