"""Figure 7 — traceroute control-packet overhead vs number of hops.

Paper: "Figure 7 shows the number of control messages as measured by
invoking the traceroute command with different number of hops in
diameter.  Note that the overhead grows almost linearly, with fewer than
50 control packets for 8 hops."

We count every non-beacon transmission on an otherwise idle network
during the invocation (probes, replies, and each radio hop of every
report, whatever kind label the forwarding layer stamps on it).

An ablation series compares the multi-hop ping command on the same
chains — per-invocation cost is lower (2 transmissions per hop, no
reports) but the padded probe *grows* with the path and caps at 24 hops,
which is the scalability trade §III-B.4 describes.
"""

import numpy as np
import pytest

from repro.analysis import packets_between, render_table
from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

SEED = 9
MAX_HOPS = 8


@pytest.fixture(scope="module")
def deployments():
    """One deployed chain per diameter 1..8."""
    out = {}
    for hops in range(1, MAX_HOPS + 1):
        testbed = build_chain(hops + 1, spacing=60.0, seed=SEED,
                              propagation_kwargs=QUIET_PROPAGATION)
        out[hops] = deploy_liteview(testbed, warm_up=15.0)
    return out


def traceroute_cost(dep, hops):
    """(# control packets, reached) for one traceroute invocation."""
    tb = dep.testbed
    service = dep.traceroute_services[1]
    start = tb.env.now
    proc = tb.env.process(
        service.traceroute(hops + 1, rounds=1, length=32, routing_port=10)
    )
    result = tb.env.run(until=proc)
    packets = packets_between(tb.monitor, start, tb.env.now)
    return len(packets), result.reached_target


def ping_cost(dep, hops):
    """(# packets, received) for one multi-hop ping invocation."""
    tb = dep.testbed
    service = dep.ping_services[1]
    start = tb.env.now
    proc = tb.env.process(
        service.ping(hops + 1, rounds=1, length=16, routing_port=10)
    )
    result = tb.env.run(until=proc)
    packets = packets_between(tb.monitor, start, tb.env.now)
    return len(packets), result.received == 1


def median_cost(fn, dep, hops, trials=5):
    """Median over trials of completed invocations (losses retried)."""
    costs = []
    for _ in range(trials * 2):
        cost, complete = fn(dep, hops)
        if complete:
            costs.append(cost)
        if len(costs) == trials:
            break
    assert costs, f"no completed invocation at {hops} hops"
    return float(np.median(costs))


def test_fig7_traceroute_overhead(benchmark, deployments, report):
    benchmark.pedantic(
        traceroute_cost, args=(deployments[MAX_HOPS], MAX_HOPS),
        rounds=3, iterations=1,
    )
    trace_series = {
        hops: median_cost(traceroute_cost, deployments[hops], hops)
        for hops in range(1, MAX_HOPS + 1)
    }
    ping_series = {
        hops: median_cost(ping_cost, deployments[hops], hops)
        for hops in range(1, MAX_HOPS + 1)
    }

    # -- paper-shape assertions --------------------------------------
    # Fewer than 50 control packets at 8 hops.
    assert trace_series[MAX_HOPS] < 50
    # Monotone growth, and "almost linear": the per-hop increment stays
    # small (the quadratic report-return term has a small coefficient at
    # this scale).
    values = [trace_series[h] for h in range(1, MAX_HOPS + 1)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    increments = [b - a for a, b in zip(values, values[1:])]
    assert max(increments) <= 12
    # One-hop commands cost only a couple of packets (§V-C: "for one hop
    # protocols such as ping, the overhead is sufficiently small,
    # usually only two packets").
    assert ping_series[1] <= 3
    assert trace_series[1] <= 4
    # Ping stays cheaper per invocation; traceroute pays for per-hop
    # visibility.
    assert ping_series[MAX_HOPS] < trace_series[MAX_HOPS]

    rows = [
        [h, trace_series[h], ping_series[h]]
        for h in range(1, MAX_HOPS + 1)
    ]
    report("fig7_overhead", render_table(
        ["hops", "traceroute_packets", "multihop_ping_packets"], rows,
        title=("Figure 7 — control-packet overhead per invocation "
               "(median of completed runs)"),
    ))
