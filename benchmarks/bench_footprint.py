"""E4 (§IV-C.5/6) — command image footprints vs MicaZ budgets.

Paper: the ping binary "consumes 2148 bytes of flash and 278 bytes of
static RAM"; traceroute "2820 bytes of flash and 272 bytes of static
RAM"; both called "well acceptable even on the resource-constrained
MicaZ nodes" (128 KB flash / 4 KB RAM).

Binary sizes cannot be reproduced in Python (see DESIGN.md); this bench
replays the paper's numbers through the accounting model and asserts the
acceptability claim: both commands plus the kernel and controller fit
with ample headroom, and each command costs under 3 % of flash and under
7 % of RAM.
"""

import pytest

from repro.analysis import render_table
from repro.kernel.memory import (
    FLASH_BUDGET_BYTES,
    KERNEL_FLASH_BYTES,
    KERNEL_RAM_BYTES,
    PAPER_FOOTPRINTS,
    RAM_BUDGET_BYTES,
    MemoryModel,
)


def install_suite():
    mm = MemoryModel()
    mm.install("kernel", KERNEL_FLASH_BYTES, KERNEL_RAM_BYTES)
    for name, (flash, ram) in sorted(PAPER_FOOTPRINTS.items()):
        mm.install(name, flash, ram)
    return mm


def test_footprints_fit_mote_budgets(benchmark, report):
    mm = benchmark(install_suite)

    # -- paper-value assertions --------------------------------------
    assert PAPER_FOOTPRINTS["ping"] == (2148, 278)
    assert PAPER_FOOTPRINTS["traceroute"] == (2820, 272)
    assert mm.flash_free > 0 and mm.ram_free > 0
    for name, (flash, ram) in PAPER_FOOTPRINTS.items():
        assert flash / FLASH_BUDGET_BYTES < 0.03, name
        assert ram / RAM_BUDGET_BYTES < 0.07, name

    rows = []
    for name, (flash, ram) in sorted(PAPER_FOOTPRINTS.items()):
        rows.append([
            name, flash, ram,
            f"{100 * flash / FLASH_BUDGET_BYTES:.2f}%",
            f"{100 * ram / RAM_BUDGET_BYTES:.2f}%",
        ])
    rows.append(["(total installed)", mm.flash_used, mm.ram_used,
                 f"{100 * mm.flash_used / FLASH_BUDGET_BYTES:.2f}%",
                 f"{100 * mm.ram_used / RAM_BUDGET_BYTES:.2f}%"])
    report("e4_footprint", render_table(
        ["image", "flash_B", "ram_B", "flash_frac", "ram_frac"], rows,
        title=("E4 — command image footprints (paper values) vs MicaZ "
               "budgets (128 KB flash / 4 KB RAM)"),
    ))


def test_overcommit_is_rejected(benchmark):
    """The admission side of the model: a hog that exceeds RAM fails."""
    from repro.errors import MemoryBudgetExceeded

    def attempt():
        mm = install_suite()
        try:
            mm.install("hog", 1024, RAM_BUDGET_BYTES)
        except MemoryBudgetExceeded:
            return mm
        raise AssertionError("overcommit must be rejected")

    mm = benchmark(attempt)
    assert mm.lookup("hog") is None
