"""E6 (§IV-B) — the reliable one-hop exchange protocol, plus ablations.

Paper claims to verify:

* "one acknowledgement packet, combined with a timeout mechanism, is
  sufficient" for single-packet commands;
* batches with per-batch acks push multi-packet commands through, with
  the batch size "dynamically adjusted based on link quality: a smaller
  batch size is preferred when packets are more likely to get lost";
* group responses use random backoff "so that their packets will not
  collide";
* overall, "this simple protocol works reliably well for one-hop
  communication".

Ablations (design choices DESIGN.md calls out):

* adaptive vs fixed batch size across link qualities;
* group-response backoff on vs off.
"""

import pytest

from repro.analysis import render_table
from repro.core.controller import install_controller
from repro.core.deploy import deploy_liteview
from repro.core.reliable import ReliableEndpoint
from repro.core.wire import MsgType
from repro.errors import CommandTimeout
from repro.kernel import Testbed
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

#: Distances spanning clean to gray-region links (SNR ≈ 12.4 / 3.3 /
#: 0.7 / -0.9 dB at full power with the default model).
DISTANCES = [35.0, 70.0, 85.0, 92.0]
MESSAGE_BYTES = 400


def transfer_stats(distance, *, adaptive, seed=3, messages=6):
    """Deliveries and packet cost for repeated 400 B transfers."""
    tb = Testbed(seed=seed, propagation_kwargs=QUIET_PROPAGATION)
    a = tb.add_node("a", (0.0, 0.0))
    b = tb.add_node("b", (distance, 0.0))
    batch_kwargs = (
        {} if adaptive
        else {"initial_batch": 4, "min_batch": 4, "max_batch": 4}
    )
    ep_a = ReliableEndpoint(a, lambda o, m: None, **batch_kwargs)
    inbox = []
    ReliableEndpoint(b, lambda o, m: inbox.append(m), **batch_kwargs)
    delivered = 0
    for i in range(messages):
        proc = tb.env.process(ep_a.send(b.id, bytes([i]) * MESSAGE_BYTES))
        if tb.env.run(until=proc):
            delivered += 1
    return {
        "delivered": delivered,
        "messages": messages,
        "data_packets": tb.monitor.counter("reliable.data_sent"),
        "acks": tb.monitor.counter("reliable.acks_sent"),
        "final_batch": ep_a.batch_size(b.id),
    }


def test_reliable_transfers_across_link_quality(benchmark, report):
    benchmark.pedantic(
        transfer_stats, args=(DISTANCES[1],),
        kwargs={"adaptive": True}, rounds=2, iterations=1,
    )
    rows = []
    for distance in DISTANCES:
        adaptive = transfer_stats(distance, adaptive=True)
        fixed = transfer_stats(distance, adaptive=False)
        rows.append([
            distance,
            f"{adaptive['delivered']}/{adaptive['messages']}",
            adaptive["data_packets"], adaptive["final_batch"],
            f"{fixed['delivered']}/{fixed['messages']}",
            fixed["data_packets"],
        ])
        # "Works reliably well": everything delivered on healthy and
        # gray links alike; only the deepest gray-region link (~ -0.9 dB
        # SNR, PRR ≈ 0.5 per chunk) may exhaust the retry budget.
        if distance <= 85.0:
            assert adaptive["delivered"] == adaptive["messages"], distance
        else:
            assert adaptive["delivered"] >= adaptive["messages"] - 2

    # -- ablation shape ------------------------------------------------
    # On the cleanest link the adaptive sender grows its batch; on the
    # grayest it shrinks toward 1.
    clean = transfer_stats(DISTANCES[0], adaptive=True)
    gray = transfer_stats(DISTANCES[-1], adaptive=True)
    assert clean["final_batch"] > gray["final_batch"]
    # Retransmissions grow with loss: the gray link costs more packets
    # for the same payload.
    assert gray["data_packets"] > clean["data_packets"]

    report("e6_reliable_protocol", render_table(
        ["distance_m", "adaptive_ok", "adaptive_pkts", "final_batch",
         "fixed_ok", "fixed_pkts"],
        rows,
        title=("E6 — reliable protocol: 6 x 400 B transfers per link "
               "(adaptive vs fixed batch of 4)"),
    ))


def test_single_packet_command_costs_one_exchange(benchmark):
    """Single-packet commands: one data packet + one ack on a clean
    link (the paper's degenerate case)."""

    def run():
        tb = Testbed(seed=3, propagation_kwargs=QUIET_PROPAGATION)
        a = tb.add_node("a", (0.0, 0.0))
        b = tb.add_node("b", (20.0, 0.0))
        ep = ReliableEndpoint(a, lambda o, m: None)
        ReliableEndpoint(b, lambda o, m: None)
        proc = tb.env.process(ep.send(b.id, b"cmd"))
        ok = tb.env.run(until=proc)
        return ok, tb.monitor.counter("reliable.data_sent"), \
            tb.monitor.counter("reliable.acks_sent")

    ok, data, acks = benchmark(run)
    assert ok and data == 1 and acks == 1


def test_group_response_backoff_ablation(benchmark, report):
    """Four nodes answering concurrently: with the random response
    backoff disabled, replies collide and commands fail or retry; with
    it enabled, every command succeeds."""

    def run_group(backoff, trials=6):
        """Broadcast GET_RADIO to a 5-node group repeatedly; count the
        replies that reach the workstation and the retransmissions the
        repliers needed."""
        testbed = build_chain(5, spacing=25.0, seed=6,
                              propagation_kwargs=QUIET_PROPAGATION)
        dep = deploy_liteview(
            testbed, warm_up=15.0,
            controller_kwargs={"response_backoff": backoff},
        )
        ws = dep.workstation
        ws.node.position = (50.0, -15.0)  # hears all five nodes
        replies = 0
        for _ in range(trials):
            collected = ws.group_call(MsgType.GET_RADIO, window=0.6)
            replies += len(collected)
        retries = testbed.monitor.counter("reliable.ack_timeouts")
        return replies, retries, trials * 5

    with_backoff = benchmark.pedantic(run_group, args=(0.3,),
                                      rounds=3, iterations=1)
    without_backoff = run_group(0.0)

    # With the paper's random backoff, group replies come back nearly
    # loss-free; without it, the simultaneous replies collide and
    # measurably fewer get through (and/or retries explode).
    assert with_backoff[0] >= 0.9 * with_backoff[2]
    assert (without_backoff[0] < with_backoff[0]
            or without_backoff[1] > with_backoff[1] * 2)

    report("e6_group_backoff", render_table(
        ["response_backoff", "replies_received", "expected",
         "retransmission_timeouts"],
        [["0.3 s (paper)", with_backoff[0], with_backoff[2],
          with_backoff[1]],
         ["disabled", without_backoff[0], without_backoff[2],
          without_backoff[1]]],
        title=("E6 ablation — group-response random backoff "
               "(broadcast GET_RADIO to 5 nodes, 6 trials)"),
    ))
