"""Ablation — the routing layer's link-quality filter.

DESIGN.md calls out one choice our geographic forwarding makes that the
paper leaves implicit: forwarding candidates are filtered by beacon LQI
(``min_lqi``), because greedy progress over a fringe neighbor trades a
hop of distance for heavy silent loss.  This bench quantifies it on a
chain whose alternate-hop "shortcut" links are exactly the gray-region
links the filter exists to avoid.
"""

import pytest

from repro.analysis import packets_between, render_table
from repro.core.commands.ping import install_ping
from repro.net import GeographicForwarding
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

#: 46 m spacing: adjacent links are clean (SNR ≈ 8 dB), two-hop
#: "shortcuts" (92 m) sit in the gray region (SNR ≈ -0.8 dB) — greedy
#: forwarding without the filter takes them.
SPACING = 46.0
ROUNDS = 20


def run_pings(min_lqi, seed=3):
    testbed = build_chain(7, spacing=SPACING, seed=seed,
                          propagation_kwargs=QUIET_PROPAGATION)
    testbed.install_protocol_everywhere(
        GeographicForwarding, min_lqi=min_lqi
    )
    pings = {n.id: install_ping(n) for n in testbed.nodes()}
    testbed.warm_up(20.0)
    start = testbed.env.now
    delivered = 0
    rtts = []
    for _ in range(ROUNDS):
        proc = testbed.env.process(
            pings[1].ping(7, rounds=1, length=16, routing_port=10)
        )
        result = testbed.env.run(until=proc)
        if result.received:
            delivered += 1
            rtts.append(result.rounds[0].rtt_ms)
    packets = packets_between(testbed.monitor, start, testbed.env.now)
    return {
        "delivered": delivered,
        "mean_rtt": sum(rtts) / len(rtts) if rtts else None,
        "packets": len(packets),
    }


def test_lqi_filter_ablation(benchmark, report):
    benchmark.pedantic(run_pings, args=(90.0,), rounds=1, iterations=1)
    filtered = run_pings(90.0)
    unfiltered = run_pings(0.0)

    # -- shape assertions ------------------------------------------------
    # With the filter, the 6-hop path is reliable.
    assert filtered["delivered"] >= ROUNDS * 0.8
    # Without it, greedy gray-region shortcuts lose far more probes
    # (each round trip crosses several ~50% links).
    assert unfiltered["delivered"] < filtered["delivered"]

    report("ablation_lqi_filter", render_table(
        ["min_lqi", "delivered", "mean_rtt_ms", "radio_packets"],
        [[90, f"{filtered['delivered']}/{ROUNDS}",
          round(filtered["mean_rtt"], 1), filtered["packets"]],
         [0, f"{unfiltered['delivered']}/{ROUNDS}",
          "-" if unfiltered["mean_rtt"] is None
          else round(unfiltered["mean_rtt"], 1),
          unfiltered["packets"]]],
        title=("Ablation — geographic forwarding's link-quality filter "
               f"({ROUNDS} multi-hop pings over 6 hops)"),
    ))
