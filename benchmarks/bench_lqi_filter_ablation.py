"""Ablation — the routing layer's link-quality filter.

DESIGN.md calls out one choice our geographic forwarding makes that the
paper leaves implicit: forwarding candidates are filtered by beacon LQI
(``min_lqi``), because greedy progress over a fringe neighbor trades a
hop of distance for heavy silent loss.  This bench quantifies it on a
chain whose alternate-hop "shortcut" links are exactly the gray-region
links the filter exists to avoid.

Runs as a :mod:`repro.campaign` grid over ``min_lqi`` ∈ {90, 0} — the
``lqi_ablation`` scenario owns the 20-ping measurement; the campaign
owns the sweep, the seeding and the merge.
"""

from repro.analysis import aggregate_cells, render_table
from repro.campaign import Campaign, run_campaign

ROUNDS = 20

CAMPAIGN = Campaign(
    name="lqi-ablation", scenario="lqi_ablation", seed=3,
    base_params={"rounds": ROUNDS}, grid={"min_lqi": [90.0, 0.0]},
)


def test_lqi_filter_ablation(benchmark, report):
    single = Campaign(name="lqi-one", scenario="lqi_ablation", seed=3,
                      base_params={"rounds": ROUNDS, "min_lqi": 90.0})
    benchmark.pedantic(lambda: run_campaign(single, workers=1),
                       rounds=3, iterations=1)
    result = run_campaign(CAMPAIGN, workers=1)
    assert result.failures == []
    by_lqi = {r.spec.params_dict["min_lqi"]: r.values for r in result.ok}
    filtered, unfiltered = by_lqi[90.0], by_lqi[0.0]

    # -- shape assertions ------------------------------------------------
    # With the filter, the 6-hop path is reliable.
    assert filtered["delivered"] >= ROUNDS * 0.8
    # Without it, greedy gray-region shortcuts lose far more probes
    # (each round trip crosses several ~50% links).
    assert unfiltered["delivered"] < filtered["delivered"]

    # The merge path works on sweep output too: one cell per min_lqi.
    cells = aggregate_cells(
        [(r.spec.params_dict, r.values) for r in result.ok],
        metrics=["delivered"],
    )
    assert {a.params["min_lqi"]: a.mean for a in cells} == {
        90.0: filtered["delivered"], 0.0: unfiltered["delivered"],
    }

    report("ablation_lqi_filter", render_table(
        ["min_lqi", "delivered", "mean_rtt_ms", "radio_packets"],
        [[90, f"{filtered['delivered']}/{ROUNDS}",
          round(filtered["mean_rtt_ms"], 1), filtered["packets"]],
         [0, f"{unfiltered['delivered']}/{ROUNDS}",
          "-" if unfiltered["mean_rtt_ms"] is None
          else round(unfiltered["mean_rtt_ms"], 1),
          unfiltered["packets"]]],
        title=("Ablation — geographic forwarding's link-quality filter "
               f"({ROUNDS} multi-hop pings over 6 hops, campaign grid)"),
    ))
