"""Per-move invalidation cost: flat in total node count.

Not a paper experiment — the perf gate for the time-varying-geometry
refactor.  Before per-node position epochs, one ``node.position``
assignment bumped the global ``_topo_version``: every sender's
candidate index and every cached mean-loss row died, so continuous
motion at city scale degenerated back to the dense O(N²) regime.  The
refactor's contract is that a move costs O(local density) — two grid
neighborhood queries plus an epoch bump per affected neighbor — no
matter how many nodes the deployment holds.

``test_per_move_cost_flat_across_tiers`` measures the raw per-move
cost on the 30-node field, the 100-node field and the ~1040-node city
(warm caches, real deployed traffic) and asserts the city move does
not scale with N: on the *compact* fields every node is a range
neighbor (local density == N), while a city mover sees only its own
district (~40–50), so dense-regime behaviour would make the city move
~10x the 100-node move and the epoch scheme keeps it at or below it.
Recorded in ``BENCH_simulator.json`` as ``mobility_move_cost_us_*``.

``test_mobile_city_minute`` deploys the city with two waypoint patrols
crossing it and asserts a minute of continuous motion keeps >90% of
receivers pruned — motion must not collapse the spatial index.
"""

import time

from repro.core.deploy import deploy_liteview
from repro.radio import MobilityPlan, MobilitySpec, install_mobility
from repro.workloads import (
    hundred_node_field,
    thirty_node_field,
    thousand_node_city,
)

#: The city move may cost at most this multiple of the *larger* compact
#: field's move (generous: shared hardware jitters; dense-regime
#: behaviour would blow through it by an order of magnitude).
MAX_CITY_FACTOR = 3.0

#: Moves timed per tier (amortises call_at/grid constants).
MOVES = 2000


def _warm(testbed):
    """Deploy and run long enough that grids and caches are all warm."""
    deploy_liteview(testbed, warm_up=5.0)
    return testbed


def _per_move_cost_s(testbed, node_id=2):
    """Mean wall cost of one small position assignment, caches warm."""
    node = testbed.node(node_id)
    x, y = node.position
    # One throwaway move so lazy counters/handles exist before timing.
    node.position = (x + 0.25, y)
    start = time.perf_counter()
    for k in range(MOVES):
        node.position = (x + 0.5 * ((k & 1) == 0), y)
    elapsed = time.perf_counter() - start
    node.position = (x, y)
    return elapsed / MOVES


def test_per_move_cost_flat_across_tiers(benchmark, record_metric, report):
    tiers = {
        30: _warm(thirty_node_field(seed=2)),
        100: _warm(hundred_node_field(seed=3)),
        1040: _warm(thousand_node_city(seed=5)),
    }
    costs = {n: _per_move_cost_s(tb) for n, tb in tiers.items()}

    compact = max(costs[30], costs[100])
    factor = costs[1040] / compact
    for n, cost in costs.items():
        record_metric(f"mobility_move_cost_us_{n}", cost * 1e6,
                      moves=MOVES)
    record_metric("mobility_move_city_vs_compact_factor", factor,
                  budget=MAX_CITY_FACTOR)
    report(
        "mobility_move_cost",
        "\n".join([
            "per-move invalidation cost (warm caches, small moves)",
            *(f"  {n:>5}-node tier        {cost * 1e6:8.2f} us/move"
              for n, cost in costs.items()),
            f"  city / compact factor  {factor:8.2f}"
            f"  (budget {MAX_CITY_FACTOR:.1f})",
        ]),
    )
    # Timing for BENCH_simulator.json: the city-tier move itself.
    city = tiers[1040]
    benchmark.pedantic(lambda: _per_move_cost_s(city),
                       rounds=3, iterations=1)
    # The contract: 10x the nodes must NOT mean 10x the move cost.  The
    # city mover touches ~40-50 district neighbors; the compact fields
    # touch all 30/100 — so a flat-or-better city move proves per-node
    # epochs, and a dense-regime regression fails by an order of
    # magnitude, far past any hardware jitter.
    assert factor < MAX_CITY_FACTOR, (
        f"city per-move cost is {factor:.1f}x the compact-field move "
        f"(budget {MAX_CITY_FACTOR}): invalidation is scaling with N")


def test_mobile_city_minute(benchmark, record_metric, report):
    """A city minute with two cross-city patrols: pruning must hold."""

    def run():
        testbed = thousand_node_city(seed=5)
        width = 4 * 1500.0
        patrol_a = testbed.add_node("patrol-a", (-80.0, 30.0)).id
        patrol_b = testbed.add_node("patrol-b", (width + 80.0, 1530.0)).id
        install_mobility(testbed, MobilityPlan(name="city-cross", specs=(
            MobilitySpec(kind="waypoint", at=2.0, nodes=(patrol_a,),
                         waypoints=((56.0, width + 80.0, 30.0),)),
            MobilitySpec(kind="waypoint", at=2.0, nodes=(patrol_b,),
                         waypoints=((56.0, -80.0, 1530.0),)),
        )))
        deploy_liteview(testbed, warm_up=60.0)
        medium = testbed.medium
        total = medium.candidates_considered + medium.candidates_pruned
        return (testbed.monitor.counter("mobility.updates"),
                testbed.monitor.counter("medium.repositions"),
                medium.candidates_pruned / total)

    if getattr(benchmark, "disabled", False):
        updates, repositions, pruned = run()  # CI smoke: correctness only
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        updates, repositions, pruned = benchmark.pedantic(
            run, rounds=3, iterations=1)
        record_metric("mobile_city_pruned_fraction", pruned,
                      updates=updates)
        report(
            "mobility_city_minute",
            "\n".join([
                "1k-city minute with two cross-city patrols",
                f"  mobility updates       {updates:8d}",
                f"  medium repositions     {repositions:8d}",
                f"  receivers pruned       {pruned * 100:8.2f} %",
            ]),
        )
    assert updates >= 112  # two patrols, ~56 ticks each
    assert repositions >= updates
    assert pruned > 0.90  # motion did not collapse the spatial index
