"""E8 (§IV-A.1) — protocol independence and protocol comparison.

Paper: "it is common that because protocols follow their own ways to
construct their internal routing tables, they exhibit different
performance.  To select the optimal combination of protocols, users may
install each protocol sequentially, and measure the protocol
performance" — with the same ping/traceroute binaries and only the
``port=`` parameter changing.

Runs as a :mod:`repro.campaign` grid: one ``protocol_ping`` cell per
routing protocol (all four co-installed in every cell, the ``protocol``
parameter picks the probed port), two seeded replicates per cell, merged
into per-protocol means.  Shape: all four deliver; flooding pays the
highest packet cost; the unicast protocols are comparable to each other
and much cheaper than flooding; the collection tree (measured one-way —
it has no reply path) is cheapest per probe.
"""

from repro.analysis import aggregate_cells, render_table
from repro.campaign import Campaign, run_campaign

PROTOCOLS = ["geographic", "dsdv", "tree", "flooding"]

CAMPAIGN = Campaign(
    name="e8-protocols", scenario="protocol_ping", seed=4,
    grid={"protocol": PROTOCOLS}, repeats=2,
)


def cell_means(result):
    """Per-protocol mean of every numeric observable."""
    rows = [(r.spec.params_dict, r.values) for r in result.ok]
    out: dict[str, dict[str, float]] = {}
    for agg in aggregate_cells(rows):
        out.setdefault(agg.params["protocol"], {})[agg.metric] = agg.mean
    return out


def test_same_command_runs_over_all_protocols(benchmark, report):
    single = Campaign(name="e8-one", scenario="protocol_ping", seed=4,
                      base_params={"protocol": "geographic"})
    benchmark.pedantic(
        lambda: run_campaign(single, workers=1), rounds=2, iterations=1,
    )
    result = run_campaign(CAMPAIGN, workers=1)
    assert result.failures == []
    stats = cell_means(result)

    # -- paper-shape assertions --------------------------------------
    for name in PROTOCOLS:
        s = stats[name]
        # Protocol independence: the unmodified command path works over
        # each protocol, delivering the majority of probes.
        assert s["received"] >= s["rounds"] * 0.5, name
        if name != "tree":
            assert s["mean_rtt_ms"] > 0, name
    # Flooding is the expensive baseline: most packets per invocation.
    assert stats["flooding"]["packets"] > max(
        stats["geographic"]["packets"], stats["dsdv"]["packets"],
    )
    # The two unicast protocols move the same probe the same distance:
    # comparable packet cost (within 2x of each other).
    geo, dsdv = stats["geographic"]["packets"], stats["dsdv"]["packets"]
    assert max(geo, dsdv) <= 2 * min(geo, dsdv)

    rows = [
        [name,
         f"{stats[name]['received']:.1f}/{stats[name]['rounds']:.0f}",
         ("-" if name == "tree"
          else round(stats[name]["mean_rtt_ms"], 1)),
         round(stats[name]["packets"], 1)]
        for name in PROTOCOLS
    ]
    report("e8_protocol_comparison", render_table(
        ["protocol", "delivered", "mean_rtt_ms", "packets_per_8"],
        rows,
        title=("E8 — one command path, four routing protocols "
               f"(4-hop chain, port= parameter only; means over "
               f"{CAMPAIGN.repeats} seeded replicates; tree measured "
               "one-way, it has no reply path)"),
    ))
