"""E8 (§IV-A.1) — protocol independence and protocol comparison.

Paper: "it is common that because protocols follow their own ways to
construct their internal routing tables, they exhibit different
performance.  To select the optimal combination of protocols, users may
install each protocol sequentially, and measure the protocol
performance" — with the same ping/traceroute binaries and only the
``port=`` parameter changing.

This bench runs the *identical* multi-hop ping command over geographic
forwarding, DSDV and flooding on the same 4-hop chain and compares
delivery, RTT and per-invocation packet cost.  Shape: all three deliver;
flooding pays the highest packet cost; the unicast protocols are
comparable to each other and much cheaper than flooding.
"""

import pytest

from repro.analysis import packets_between, render_table
from repro.core.deploy import deploy_liteview
from repro.net import (
    TREE_PORT,
    DsdvRouting,
    FloodingProtocol,
    GeographicForwarding,
    TreeRouting,
    WellKnownPorts,
)
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

PROTOCOLS = [
    ("geographic forwarding", GeographicForwarding,
     WellKnownPorts.GEOGRAPHIC),
    ("dsdv", DsdvRouting, WellKnownPorts.DSDV),
    ("tree (etx)", TreeRouting, TREE_PORT),
    ("flooding", FloodingProtocol, WellKnownPorts.FLOODING),
]


@pytest.fixture(scope="module")
def deployment():
    """One chain with all four protocols installed side by side."""
    testbed = build_chain(5, spacing=60.0, seed=4,
                          propagation_kwargs=QUIET_PROPAGATION)
    for node in testbed.nodes():
        for _name, cls, _port in PROTOCOLS:
            if cls is TreeRouting:
                # Collection tree rooted at the ping target (node 5),
                # so root-bound probes are routable.
                node.install_protocol(cls, root=5)
            else:
                node.install_protocol(cls)
    dep = deploy_liteview(testbed, protocol=None, warm_up=40.0)
    return dep


def measure(dep, port, rounds=8):
    """Delivery/RTT/packet-cost of multi-hop ping over one protocol."""
    tb = dep.testbed
    service = dep.ping_services[1]
    start = tb.env.now
    proc = tb.env.process(
        service.ping(5, rounds=rounds, length=16, routing_port=port)
    )
    result = tb.env.run(until=proc)
    packets = packets_between(tb.monitor, start, tb.env.now)
    return {
        "received": result.received,
        "rounds": rounds,
        "mean_rtt_ms": result.mean_rtt_ms,
        "packets": len(packets),
    }


def measure_collection(dep, port, rounds=8):
    """One-way delivery over the collection tree (no reply path exists:
    trees route only toward the root — a structural protocol property
    this comparison surfaces)."""
    tb = dep.testbed
    got = []
    if tb.node(5).stack.ports.holder(66) is None:
        tb.node(5).stack.ports.subscribe(66, lambda p, a: got.append(p),
                                         name="collect")
    start = tb.env.now
    proto = tb.node(1).protocol_on(port)
    for _ in range(rounds):
        proto.send(5, 66, b"collected-data", kind="tree")
        tb.warm_up(0.2)
    packets = packets_between(tb.monitor, start, tb.env.now)
    return {
        "received": len(got),
        "rounds": rounds,
        "mean_rtt_ms": None,
        "packets": len(packets),
    }


def test_same_command_runs_over_all_protocols(benchmark, deployment,
                                              report):
    benchmark.pedantic(
        measure, args=(deployment, WellKnownPorts.GEOGRAPHIC),
        rounds=2, iterations=1,
    )
    stats = {}
    for name, cls, port in PROTOCOLS:
        if cls is TreeRouting:
            stats[name] = measure_collection(deployment, port)
        else:
            stats[name] = measure(deployment, port)

    # -- paper-shape assertions --------------------------------------
    for name, s in stats.items():
        # Protocol independence: the unmodified command path works over
        # each protocol, delivering the majority of probes.
        assert s["received"] >= s["rounds"] * 0.5, name
        if name != "tree (etx)":
            assert s["mean_rtt_ms"] is not None, name
    # Flooding is the expensive baseline: most packets per invocation.
    assert stats["flooding"]["packets"] > max(
        stats["geographic forwarding"]["packets"],
        stats["dsdv"]["packets"],
    )
    # The two unicast protocols move the same probe the same distance:
    # comparable packet cost (within 2x of each other).
    geo, dsdv = (stats["geographic forwarding"]["packets"],
                 stats["dsdv"]["packets"])
    assert max(geo, dsdv) <= 2 * min(geo, dsdv)

    rows = [
        [name, f"{s['received']}/{s['rounds']}",
         "-" if s["mean_rtt_ms"] is None else round(s["mean_rtt_ms"], 1),
         s["packets"]]
        for name, s in stats.items()
    ]
    report("e8_protocol_comparison", render_table(
        ["protocol", "delivered", "mean_rtt_ms", "packets_per_8"],
        rows,
        title=("E8 — one command path, four routing protocols "
               "(4-hop chain, port= parameter only; tree measured "
               "one-way, it has no reply path)"),
    ))
