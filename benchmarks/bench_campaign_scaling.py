"""Campaign runner scaling: serial vs warm-pool wall-clock, and the cache.

Not a paper experiment — housekeeping for the reproduction, like
``bench_simulator_performance``: every evaluation artifact is a campaign
of independent seeded runs, so what matters is (a) how much wall-clock
the persistent warm-worker pool buys on a multi-core box, (b) that
parallel dispatch changes nothing but wall-clock, and (c) that a warm
result cache makes re-runs nearly free.  A timed session records
``test_campaign_serial_16runs`` / ``test_campaign_parallel_4workers`` /
``test_campaign_cached_rerun`` plus a derived
``parallel_speedup_vs_serial`` value into ``BENCH_simulator.json``, so
the serial-vs-parallel trajectory — and any regression back to the
pre-warm-pool days when 4 workers *lost* to serial (20.2 s vs 14.3 s)
— is tracked explicitly across PRs.

Both timed phases are cache-free (a warm cache would turn rounds 2+
into no-ops and fake the statistics) and run ≥ 3 rounds; the parallel
phase takes one unmeasured warm-up round so pool startup — paid once
per process, not once per campaign — stays out of the steady-state
numbers.  The ≥2× speedup assertion only fires where 4 CPUs are
actually available; on a starved container the pool degrades to
time-slicing and the numbers are still recorded, just not asserted.
"""

import os
import time

from repro.campaign import Campaign, get_warm_pool, run_campaign

#: The 16-run campaign the acceptance numbers are defined over.
N_RUNS = 16
CAMPAIGN = Campaign(
    name="scaling", scenario="beacon_field", seed=5,
    base_params={"nodes": 30, "minutes": 4.0}, repeats=N_RUNS,
)
WORKERS = 4

#: Cross-test measurements (tests run in definition order; each test
#: also works standalone by filling in what it needs).
_STATE: dict = {}


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _run(workers, cache=None):
    start = time.perf_counter()
    out = run_campaign(CAMPAIGN, workers=workers, cache=cache)
    wall = time.perf_counter() - start
    assert out.failures == [] and len(out.runs) == N_RUNS
    return out, wall


def _cache_dir(tmp_path_factory):
    if "cache_dir" not in _STATE:
        _STATE["cache_dir"] = tmp_path_factory.mktemp("campaign-cache")
    return _STATE["cache_dir"]


def test_campaign_serial_16runs(benchmark):
    """The reference: 16 runs in-process, cache off so every round pays
    the full execution cost."""

    def run():
        out, wall = _run(workers=1, cache=None)
        _STATE["serial_wall"] = min(_STATE.get("serial_wall", wall), wall)
        _STATE["digest"] = out.digest()
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out.n_cached == 0  # cache off: every cell executes


def test_campaign_parallel_4workers(benchmark, record_metric):
    """The same cache-free campaign over the persistent warm pool:
    identical results, and ≥2× the serial throughput where 4 cores
    exist (the acceptance bar; pre-warm-pool this was 0.7×)."""
    pool = get_warm_pool(WORKERS, "auto")
    if pool is not None:
        pool.warm(timeout_s=180.0)  # imports paid outside the timing

    def run():
        out, wall = _run(workers=WORKERS)
        _STATE["parallel_wall"] = min(_STATE.get("parallel_wall", wall),
                                      wall)
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert out.n_cached == 0
    if "digest" in _STATE:
        assert out.digest() == _STATE["digest"]  # parallel == serial
    if "serial_wall" in _STATE:
        speedup = _STATE["serial_wall"] / _STATE["parallel_wall"]
        record_metric(
            "parallel_speedup_vs_serial", round(speedup, 3),
            serial_s=round(_STATE["serial_wall"], 3),
            parallel_s=round(_STATE["parallel_wall"], 3),
            workers=WORKERS, cores=_cores(),
        )
        if _cores() >= 4:
            assert speedup >= 2.0, (
                f"4-worker campaign only {speedup:.2f}x faster than "
                f"serial ({_STATE['serial_wall']:.2f}s -> "
                f"{_STATE['parallel_wall']:.2f}s)"
            )


def test_campaign_cached_rerun(benchmark, tmp_path_factory, report):
    """A fully-cached re-run executes nothing and finishes in a small
    fraction of the uncached time."""
    cache = _cache_dir(tmp_path_factory)
    # Populate the cache (unmeasured); doubles as the serial reference
    # when this test runs standalone.
    out, wall = _run(workers=1, cache=cache)
    _STATE.setdefault("serial_wall", wall)
    _STATE.setdefault("digest", out.digest())

    def run():
        out, wall = _run(workers=1, cache=cache)
        _STATE["cached_wall"] = wall
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out.n_cached == N_RUNS
    assert out.digest() == _STATE["digest"]
    assert _STATE["cached_wall"] < 0.10 * _STATE["serial_wall"], (
        f"cached re-run took {_STATE['cached_wall']:.2f}s vs "
        f"{_STATE['serial_wall']:.2f}s uncached"
    )

    lines = [
        f"campaign: {N_RUNS} x beacon_field(nodes=30, minutes=4) "
        f"(seed {CAMPAIGN.seed})",
        f"cores available:        {_cores()}",
        f"serial (1 worker):      {_STATE['serial_wall']:.2f} s",
    ]
    if "parallel_wall" in _STATE:
        lines.append(
            f"warm pool (4 workers):  {_STATE['parallel_wall']:.2f} s "
            f"({_STATE['serial_wall'] / _STATE['parallel_wall']:.2f}x)")
    lines.append(
        f"fully-cached re-run:    {_STATE['cached_wall']:.3f} s "
        f"({100 * _STATE['cached_wall'] / _STATE['serial_wall']:.1f}% "
        "of uncached)")
    report("campaign_scaling", "\n".join(lines))
