"""Campaign runner scaling: serial vs sharded wall-clock, and the cache.

Not a paper experiment — housekeeping for the reproduction, like
``bench_simulator_performance``: every evaluation artifact is a campaign
of independent seeded runs, so what matters is (a) how much wall-clock a
worker pool buys on a multi-core box, (b) that sharding changes nothing
but wall-clock, and (c) that a warm result cache makes re-runs nearly
free.  A timed session records ``test_campaign_serial_16runs`` /
``test_campaign_parallel_4workers`` / ``test_campaign_cached_rerun``
into ``BENCH_simulator.json``, so the serial-vs-sharded trajectory is
tracked across PRs.

The ≥2.5× speedup assertion only fires where 4 CPUs are actually
available — on a starved container the pool degrades to time-slicing
and the numbers are still recorded, just not asserted.
"""

import os
import time

from repro.campaign import Campaign, run_campaign

#: The 16-run campaign the acceptance numbers are defined over.
N_RUNS = 16
CAMPAIGN = Campaign(
    name="scaling", scenario="beacon_field", seed=5,
    base_params={"nodes": 30, "minutes": 4.0}, repeats=N_RUNS,
)

#: Cross-test measurements (tests run in definition order; each test
#: also works standalone by filling in what it needs).
_STATE: dict = {}


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _run(workers, cache=None):
    start = time.perf_counter()
    out = run_campaign(CAMPAIGN, workers=workers, cache=cache,
                       mp_context="spawn")
    wall = time.perf_counter() - start
    assert out.failures == [] and len(out.runs) == N_RUNS
    return out, wall


def _cache_dir(tmp_path_factory):
    if "cache_dir" not in _STATE:
        _STATE["cache_dir"] = tmp_path_factory.mktemp("campaign-cache")
    return _STATE["cache_dir"]


def test_campaign_serial_16runs(benchmark):
    """The reference: 16 runs in-process, cache off so every round pays
    the full execution cost (a warm cache would turn rounds 2+ into
    no-ops and fake the statistics)."""

    def run():
        out, wall = _run(workers=1, cache=None)
        _STATE["serial_wall"], _STATE["digest"] = wall, out.digest()
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out.n_cached == 0  # cache off: every cell executes


def test_campaign_parallel_4workers(benchmark):
    """The same campaign over a 4-worker spawn pool: identical results,
    and ≥2.5× the serial throughput where 4 cores exist."""

    def run():
        out, wall = _run(workers=4)
        _STATE["parallel_wall"] = wall
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    if "digest" in _STATE:
        assert out.digest() == _STATE["digest"]  # sharded == serial
    if _cores() >= 4 and "serial_wall" in _STATE:
        speedup = _STATE["serial_wall"] / _STATE["parallel_wall"]
        assert speedup >= 2.5, (
            f"4-worker campaign only {speedup:.2f}x faster than serial "
            f"({_STATE['serial_wall']:.2f}s -> "
            f"{_STATE['parallel_wall']:.2f}s)"
        )


def test_campaign_cached_rerun(benchmark, tmp_path_factory, report):
    """A fully-cached re-run executes nothing and finishes in a small
    fraction of the uncached time."""
    cache = _cache_dir(tmp_path_factory)
    # Populate the cache (unmeasured); doubles as the serial reference
    # when this test runs standalone.
    out, wall = _run(workers=1, cache=cache)
    _STATE.setdefault("serial_wall", wall)
    _STATE.setdefault("digest", out.digest())

    def run():
        out, wall = _run(workers=1, cache=cache)
        _STATE["cached_wall"] = wall
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out.n_cached == N_RUNS
    assert out.digest() == _STATE["digest"]
    assert _STATE["cached_wall"] < 0.10 * _STATE["serial_wall"], (
        f"cached re-run took {_STATE['cached_wall']:.2f}s vs "
        f"{_STATE['serial_wall']:.2f}s uncached"
    )

    lines = [
        f"campaign: {N_RUNS} x beacon_field(nodes=30, minutes=4) "
        f"(seed {CAMPAIGN.seed})",
        f"cores available:        {_cores()}",
        f"serial (1 worker):      {_STATE['serial_wall']:.2f} s",
    ]
    if "parallel_wall" in _STATE:
        lines.append(
            f"sharded (4 workers):    {_STATE['parallel_wall']:.2f} s "
            f"({_STATE['serial_wall'] / _STATE['parallel_wall']:.2f}x)")
    lines.append(
        f"fully-cached re-run:    {_STATE['cached_wall']:.3f} s "
        f"({100 * _STATE['cached_wall'] / _STATE['serial_wall']:.1f}% "
        "of uncached)")
    report("campaign_scaling", "\n".join(lines))
