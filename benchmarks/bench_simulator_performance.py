"""Simulator throughput: how fast the substrate itself runs.

Not a paper experiment — housekeeping for the reproduction: the figure
benches re-run whole testbeds, so the event loop and the vectorised
link model must stay fast enough to keep the whole suite interactive.
These benches give regressions a place to show up.
"""

import numpy as np

from repro.core.deploy import deploy_liteview
from repro.radio import packet_reception_ratio
from repro.sim import Environment
from repro.workloads import (
    hundred_node_field,
    thirty_node_field,
    thousand_node_city,
)


def test_event_loop_throughput(benchmark):
    """A ping-pong of pure timer events (no radio)."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(20_000):
                yield env.timeout(0.001)

        env.process(ticker())
        env.run()
        return env.now

    now = benchmark(run)
    assert abs(now - 20.0) < 1e-6  # float accumulation over 20k ticks


def test_thirty_node_minute_of_beacons(benchmark):
    """One simulated minute of the full 30-node testbed."""

    def run():
        testbed = thirty_node_field(seed=2)
        deploy_liteview(testbed, warm_up=60.0)
        return testbed.monitor.counter("medium.transmissions")

    transmissions = benchmark.pedantic(run, rounds=5, iterations=1)
    assert transmissions > 500  # ~30 nodes x 30 beacons


def test_hundred_node_minute_of_beacons(benchmark):
    """One simulated minute at 10x the paper's node count.

    The scale the vectorized medium exists for: ~100 candidate receivers
    per transmission, thousands of transmissions.  Runs to completion in
    CI smoke mode (``--benchmark-disable``) as the interactivity gate.
    """

    def run():
        testbed = hundred_node_field(seed=3)
        deploy_liteview(testbed, warm_up=60.0)
        return testbed.monitor.counter("medium.transmissions")

    transmissions = benchmark.pedantic(run, rounds=5, iterations=1)
    assert transmissions > 2000  # ~100 nodes x 30 beacons


def test_thousand_node_city_minute_of_beacons(benchmark):
    """One simulated minute of the ~1040-node city tier.

    The scale the spatial index exists for: districts sit beyond radio
    range of each other, so each transmission has ~40 in-range
    candidates out of >1000 attached radios.  Sub-quadratic scaling is
    the acceptance bar — this must land within 10x the 100-node minute
    (naive dense scaling would be ~100x), with >90% of receivers pruned
    per transmission.
    """

    def run():
        testbed = thousand_node_city(seed=5)
        deploy_liteview(testbed, warm_up=60.0)
        medium = testbed.medium
        total = medium.candidates_considered + medium.candidates_pruned
        return (testbed.monitor.counter("medium.transmissions"),
                medium.candidates_pruned / total)

    transmissions, pruned_fraction = benchmark.pedantic(
        run, rounds=5, iterations=1)
    assert transmissions > 20_000  # ~1040 nodes x 30 beacons
    assert pruned_fraction > 0.90  # the spatial index is actually on


def test_vectorised_prr_batch(benchmark):
    """The link model over 100k SINR samples in one call."""
    sinrs = np.linspace(-10.0, 20.0, 100_000)

    def run():
        return packet_reception_ratio(sinrs, 64)

    prr = benchmark(run)
    assert prr.shape == sinrs.shape
    assert prr[0] < 0.01 and prr[-1] > 0.999
