"""Online-detector overhead on the 100-node minute bench.

Not a paper experiment — the perf gate for the passive detection path
(``repro.diag.online``), in two honestly-separated numbers recorded in
``BENCH_simulator.json``:

``online_detector_overhead`` (asserted ≤ 2%)
    What shipping the subsystem costs runs that do NOT use it — i.e.
    the default/active-mode fleet, and every existing bench.  The only
    hot-path change is the per-beacon tap guard in the neighbor
    service (``taps = monitor.beacon_taps`` + a truth test), so the
    overhead is that guard's cost times the scenario's beacon
    receptions, over the scenario runtime — the same methodology as
    ``bench_trace_overhead`` uses for the disabled-tracing guard, and
    far more stable than differencing two noisy end-to-end timings.

``online_listener_attached_overhead`` (recorded, report-only)
    What a fleet that *opts into* passive mode pays: CPU-time median
    of interleaved attached-vs-detached pairs of the 100-node minute,
    with an :class:`OnlineMonitor` tapping every beacon reception and
    polled on the serve layer's assessment cadence.  Every reception
    runs two EWMA detectors, a CUSUM and ring pushes in pure Python
    (~7 µs), so this lands in the tens of percent; the budget passive
    mode actually buys is *network* overhead — zero probe packets —
    which the determinism suite asserts byte-exactly.  ROADMAP notes
    the route to a ~0% attached path (bulk columnar taps at the
    vectorized medium) if a future PR needs it.
"""

import time
import timeit

from repro.core.deploy import deploy_liteview
from repro.diag import OnlineMonitor
from repro.sim.monitor import Monitor
from repro.workloads import hundred_node_field

#: Acceptance bar: the subsystem may slow non-users by at most this.
MAX_GUARD_OVERHEAD = 0.02
#: Sanity ceiling on the opt-in listener (report-only metric; single
#: shared-hardware samples of this ratio swing tens of percent, so the
#: ceiling only catches order-of-magnitude regressions).
MAX_ATTACHED_OVERHEAD = 1.0

#: The serve layer's default assessment cadence (build_fleet).
POLL_EVERY = 30.0
MINUTE = 60.0


def run_minute(attached):
    """The 100-node minute, optionally with the passive listener on."""
    testbed = hundred_node_field(seed=3)
    online = OnlineMonitor(testbed).attach() if attached else None
    deploy_liteview(testbed, warm_up=0.0)
    t = 0.0
    while t < MINUTE:
        t += POLL_EVERY
        testbed.run(until=t)
        if online is not None:
            online.poll()
    return testbed, online


def cpu_minute(attached):
    start = time.process_time()
    run_minute(attached)
    return time.process_time() - start


def test_tap_guard_overhead_under_two_percent(record_metric, report):
    """The default path: no listener attached, only the guard runs."""
    testbed, _ = run_minute(attached=False)
    receptions = testbed.monitor.counter("neighbors.beacons_received")
    assert receptions > 20_000  # the guard really is per-reception

    monitor = Monitor()  # beacon_taps == () — the default-mode state
    n = 200_000
    guard_cost = timeit.timeit(
        "monitor.beacon_taps and None",
        globals={"monitor": monitor}, number=n) / n

    t_off = min(cpu_minute(attached=False) for _ in range(3))
    fraction = receptions * guard_cost / t_off
    record_metric("online_detector_overhead", fraction,
                  budget=MAX_GUARD_OVERHEAD, receptions=receptions,
                  guard_ns=guard_cost * 1e9)
    report(
        "online_overhead_guard",
        "\n".join([
            "online-detector guard overhead (100-node minute, detached)",
            f"  beacon receptions        {receptions}",
            f"  per-guard cost           {guard_cost * 1e9:8.1f} ns",
            f"  scenario runtime         {t_off * 1e3:8.1f} ms",
            f"  implied overhead         {fraction * 100:8.4f} %",
            f"  budget                   {MAX_GUARD_OVERHEAD * 100:8.1f} %",
        ]),
    )
    assert fraction < MAX_GUARD_OVERHEAD, (
        f"tap guard overhead {fraction:.2%} exceeds "
        f"{MAX_GUARD_OVERHEAD:.0%}")


def test_attached_listener_cost(benchmark, record_metric, report):
    """The opt-in path: every beacon reception feeds the detectors."""
    testbed, online = run_minute(attached=True)
    assert online.beacons_seen > 20_000       # the tap really ran
    assert online.links_tracked > 100
    assert testbed.monitor.counter("diag.online.polls") == 2

    if getattr(benchmark, "disabled", False):
        # CI smoke mode: correctness above, no timing below.
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return

    # Interleaved pairs: CPU-frequency drift hits both sides alike.
    ratios = []
    for _ in range(5):
        t_off = cpu_minute(attached=False)
        t_on = cpu_minute(attached=True)
        ratios.append(t_on / t_off - 1.0)
    ratios.sort()
    overhead = ratios[len(ratios) // 2]

    benchmark.pedantic(lambda: run_minute(attached=True),
                       rounds=5, iterations=1)
    record_metric("online_listener_attached_overhead", overhead,
                  ceiling=MAX_ATTACHED_OVERHEAD, pairs=len(ratios),
                  beacons=online.beacons_seen,
                  links=online.links_tracked)
    report(
        "online_overhead_attached",
        "\n".join([
            "passive listener attached overhead (100-node minute)",
            f"  beacons tapped          {online.beacons_seen}",
            f"  links tracked           {online.links_tracked}",
            f"  median overhead         {overhead * 100:8.2f} %",
            "  all samples             "
            + ", ".join(f"{r * 100:.1f}%" for r in ratios),
            f"  sanity ceiling          {MAX_ATTACHED_OVERHEAD * 100:8.0f} %",
            "  network overhead        0 probe packets (asserted in",
            "                          tests/serve/test_passive_mode.py)",
        ]),
    )
    assert overhead < MAX_ATTACHED_OVERHEAD, (
        f"attached listener overhead {overhead:.2%} exceeds the "
        f"{MAX_ATTACHED_OVERHEAD:.0%} sanity ceiling")
