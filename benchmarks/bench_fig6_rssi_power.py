"""Figure 6 — per-hop RSSI readings at two power levels.

Paper setup: "Figure 6 shows the collected RSSI values with two different
power level settings, at 10 and 25, respectively", for forward and
backward links across the 8-hop path, collected via traceroute "within a
few seconds".

Shape to reproduce:

* both forward and backward series at power 25 sit clearly above the
  power-10 series (the PA table separates the levels by ~10 dB);
* forward and backward readings differ per hop (asymmetric links);
* readings lie in the plausible register range of the paper's plot.
"""

import pytest

from repro.analysis import render_table
from repro.core.deploy import deploy_liteview
from repro.radio import power_level_to_dbm
from repro.workloads import corridor_chain

SEED = 5


@pytest.fixture(scope="module")
def deployment():
    testbed = corridor_chain(9, seed=SEED)
    dep = deploy_liteview(testbed, warm_up=15.0)
    return dep


def collect_rssi(dep, power_level, attempts=8):
    """Run traceroute at a power level; returns {hop: (fwd, bwd)}."""
    tb = dep.testbed
    for node in tb.nodes():
        node.radio.set_power_level(power_level)
    service = dep.traceroute_services[1]
    for _attempt in range(attempts):
        proc = tb.env.process(
            service.traceroute(9, rounds=1, length=32, routing_port=10)
        )
        result = tb.env.run(until=proc)
        readings = {
            h.hop_index: (h.link.rssi_forward, h.link.rssi_backward)
            for h in result.hops
        }
        if len(readings) == 8:
            return readings
    raise AssertionError(
        f"no complete RSSI sweep at power {power_level} "
        f"in {attempts} runs"
    )


def test_fig6_rssi_vs_power(benchmark, deployment, report):
    benchmark.pedantic(
        collect_rssi, args=(deployment, 25), rounds=2, iterations=1,
    )
    at_25 = collect_rssi(deployment, 25)
    at_10 = collect_rssi(deployment, 10)

    # -- paper-shape assertions --------------------------------------
    expected_gap = power_level_to_dbm(25) - power_level_to_dbm(10)
    for hop in range(1, 9):
        f25, b25 = at_25[hop]
        f10, b10 = at_10[hop]
        # Power 25 curves sit above power 10 on every hop, by roughly
        # the PA-table gap (fading/measurement noise allowed for).
        assert f25 > f10 and b25 > b10, f"hop {hop}: power ordering"
        assert f25 - f10 == pytest.approx(expected_gap, abs=6.0)
        # Register-reading plausibility (the paper's axis spans ~0..-60).
        for v in (f25, b25, f10, b10):
            assert -70 <= v <= 10
    # Asymmetry: somewhere along the path forward != backward visibly.
    assert any(abs(f - b) >= 2 for f, b in at_25.values())

    rows = [
        [hop, at_10[hop][0], at_10[hop][1], at_25[hop][0], at_25[hop][1]]
        for hop in range(1, 9)
    ]
    report("fig6_rssi_power", render_table(
        ["hop", "fwd@10", "bwd@10", "fwd@25", "bwd@25"], rows,
        title=("Figure 6 — traceroute RSSI readings "
               "(power levels 10 vs 25, forward/backward links)"),
    ))
