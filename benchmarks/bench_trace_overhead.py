"""Tracing overhead: the disabled path must cost (almost) nothing.

Not a paper experiment — housekeeping for the observability stack: every
trace call site guards with ``if tracer.enabled:`` so a production run
with tracing off pays one attribute read and a branch per site.  This
bench measures that guard, counts how often the instrumented paths
actually run in a representative scenario, and asserts the implied
disabled-tracing overhead stays under 2% of the scenario's runtime.

The enabled path is also timed (no assertion — collecting events is
allowed to cost something) so regressions have a number to show up in.
"""

import time
import timeit

from repro.core.deploy import deploy_liteview
from repro.obs import Tracer
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

#: Acceptance bar: disabled tracing adds less than this fraction.
MAX_DISABLED_OVERHEAD = 0.02

#: Safety factor on the guard count: compound call sites can evaluate
#: the guard without emitting (e.g. the medium checks per receiver).
GUARD_SLACK = 3.0


def run_scenario(traced=False):
    """One representative workload: a 5-node chain doing real traffic."""
    testbed = build_chain(5, spacing=50.0, seed=2,
                          propagation_kwargs=QUIET_PROPAGATION)
    dep = deploy_liteview(testbed, warm_up=20.0)
    if traced:
        testbed.tracer.enable()
    dep.login("192.168.0.1")
    dep.run("ping 192.168.0.4 round=4 length=32")
    testbed.warm_up(20.0)
    return testbed


def median_runtime(traced, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_scenario(traced=traced)
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def test_disabled_guard_cost_is_nanoseconds():
    """The off-path guard: one attribute read plus a falsy branch."""
    tracer = Tracer()
    n = 1_000_000
    cost = timeit.timeit(
        "tracer.enabled and tracer", globals={"tracer": tracer}, number=n
    ) / n
    # Generous ceiling: even slow interpreters do this in well under 1 us.
    assert cost < 1e-6, f"guard costs {cost * 1e9:.0f} ns"


def test_disabled_tracing_overhead_under_two_percent(report):
    # How many guard evaluations does the scenario actually perform?
    # Every emitted event is one guard that passed; slack covers guards
    # that evaluate without emitting.
    traced = run_scenario(traced=True)
    n_events = len(traced.tracer.events)
    assert n_events > 100, "scenario must exercise the instrumentation"
    n_guards = n_events * GUARD_SLACK

    tracer = Tracer()
    n = 200_000
    guard_cost = timeit.timeit(
        "tracer.enabled and tracer", globals={"tracer": tracer}, number=n
    ) / n

    t_off = median_runtime(traced=False)
    overhead = n_guards * guard_cost
    fraction = overhead / t_off
    report(
        "trace_overhead",
        "\n".join([
            "disabled-tracing overhead estimate",
            f"  trace events in scenario     {n_events}",
            f"  guard evaluations (x slack)  {n_guards:.0f}",
            f"  per-guard cost               {guard_cost * 1e9:8.1f} ns",
            f"  scenario runtime (off)       {t_off * 1e3:8.1f} ms",
            f"  implied overhead             {fraction * 100:8.4f} %",
            f"  budget                       {MAX_DISABLED_OVERHEAD * 100:8.1f} %",
        ]),
    )
    assert fraction < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing overhead {fraction:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )


def test_enabled_vs_disabled_runtime(benchmark):
    """Report-only: what turning tracing on costs end to end."""
    t_off = median_runtime(traced=False, repeats=1)

    def run():
        return run_scenario(traced=True)

    testbed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert testbed.tracer.events  # it really traced
    assert t_off > 0.0
