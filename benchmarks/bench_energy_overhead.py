"""Efficiency ablation (§III-A) — LiteView's communication-energy cost.

The paper's efficiency goal: "the implemented commands will introduce
zero extra overhead if not activated", and command overhead itself is
small (two packets for one-hop ping).  This bench quantifies both in
energy terms, using the CC2420 transmit-current model:

* idle deployment: all transmit energy is kernel beacons — LiteView's
  share is exactly zero;
* an active management session (pings + traceroutes + config): the
  management share of transmit energy stays modest against the beacon
  baseline over the same period;
* beacon-frequency ablation (the `update` command's trade-off): faster
  beacons buy faster silent-neighbor detection at proportionally higher
  energy.
"""

import pytest

from repro.analysis import energy_report, render_table
from repro.core.deploy import deploy_liteview
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION

MANAGEMENT_KINDS = ("ping", "traceroute", "control", "geographic",
                    "dsdv", "flood")


def idle_energy(duration=60.0):
    testbed = build_chain(4, spacing=60.0, seed=5,
                          propagation_kwargs=QUIET_PROPAGATION)
    deploy_liteview(testbed, warm_up=duration)
    return energy_report(testbed.monitor.packets)


def test_idle_deployment_spends_nothing_on_liteview(benchmark, report):
    energy = benchmark.pedantic(idle_energy, rounds=3, iterations=1)
    # Zero-overhead-when-inactive, in energy terms.
    for kind in MANAGEMENT_KINDS:
        assert energy.kind_fraction(kind) == 0.0
    assert energy.kind_fraction("beacon") == pytest.approx(1.0)

    report("efficiency_idle", render_table(
        ["traffic_class", "airtime_s", "share"],
        [[k, round(v, 4),
          f"{100 * energy.kind_fraction(k):.1f}%"]
         for k, v in sorted(energy.airtime_by_kind.items())],
        title="Efficiency — idle deployment, 60 s (beacons only)",
    ))


def test_active_session_energy_share(benchmark, report):
    """One management session against the 60 s beacon baseline."""

    def session():
        # The whole world is built inside the timed callable so every
        # round replays the identical session on a fresh testbed.
        testbed = build_chain(4, spacing=60.0, seed=5,
                              propagation_kwargs=QUIET_PROPAGATION)
        dep = deploy_liteview(testbed, warm_up=15.0)
        dep.login("192.168.0.1")
        dep.run("ping 192.168.0.2 round=3 length=32")
        dep.run("traceroute 192.168.0.4 round=1 port=10")
        dep.run("power 31")
        testbed.warm_up(max(0.0, 60.0 - testbed.env.now))
        return energy_report(testbed.monitor.packets)

    energy = benchmark.pedantic(session, rounds=3, iterations=1)
    management = sum(energy.kind_fraction(k) for k in MANAGEMENT_KINDS)
    # A full diagnosis session costs less transmit energy than the
    # kernel's own beaconing over the same minute.
    assert 0.0 < management < energy.kind_fraction("beacon")

    rows = [[k, round(v, 4), f"{100 * energy.kind_fraction(k):.1f}%"]
            for k, v in sorted(energy.airtime_by_kind.items())]
    rows.append(["(management total)", "-", f"{100 * management:.1f}%"])
    report("efficiency_active", render_table(
        ["traffic_class", "airtime_s", "share"], rows,
        title=("Efficiency — one management session within a 60 s "
               "window"),
    ))


def test_beacon_frequency_tradeoff(benchmark, report):
    """The `update` command's knob: detection latency vs beacon energy."""

    def measure(interval):
        testbed = build_chain(3, spacing=60.0, seed=5,
                              propagation_kwargs=QUIET_PROPAGATION)
        dep = deploy_liteview(testbed, warm_up=5.0)
        for node in testbed.nodes():
            node.neighbors.set_beacon_interval(interval)
        testbed.warm_up(4 * interval)  # settle at the new rate
        window_start = testbed.env.now
        # Silence node 3 and measure how long node 2 takes to notice.
        testbed.node(3).xcvr.enabled = False
        silenced_at = testbed.env.now
        while (testbed.node(2).neighbors.lookup(3) is not None
               and testbed.env.now - silenced_at < 60 * interval):
            testbed.warm_up(interval / 4)
        detection = testbed.env.now - silenced_at
        beacons = sum(
            1 for r in testbed.monitor.packets
            if r.kind == "beacon" and r.time >= window_start
        )
        rate = beacons / (testbed.env.now - window_start)
        return detection, rate

    results = {
        interval: measure(interval) for interval in (0.5, 1.0, 2.0, 4.0)
    }
    benchmark.pedantic(measure, args=(2.0,), rounds=3, iterations=1)

    detections = [results[i][0] for i in (0.5, 1.0, 2.0, 4.0)]
    rates = [results[i][1] for i in (0.5, 1.0, 2.0, 4.0)]
    # Faster beacons → faster detection of the silent neighbor ...
    assert detections[0] < detections[-1]
    # ... but proportionally more transmissions.
    assert rates[0] > 3 * rates[-1]

    report("beacon_tradeoff", render_table(
        ["beacon_interval_s", "silent_node_detection_s",
         "beacons_per_s"],
        [[i, round(results[i][0], 1), round(results[i][1], 2)]
         for i in (0.5, 1.0, 2.0, 4.0)],
        title="Ablation — beacon frequency (the `update` command)",
    ))
