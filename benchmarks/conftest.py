"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, asserts the
*shape* the paper reports (who wins, what grows, where limits fall), and
writes the regenerated data to ``benchmarks/results/`` so EXPERIMENTS.md
can quote it.

Timing runs additionally write ``BENCH_simulator.json`` — a
machine-readable {bench: {mean_s, stddev_s, ops_per_s, rounds}} dump — so
the perf trajectory is tracked across PRs, not just in prose.  That file
is a *latest* view (each session overwrites the benches it ran); the full
history lives in ``benchmarks/results/bench_history.jsonl``, one line per
measuring session stamped with the commit it ran against.
"""

import datetime
import json
import pathlib
import subprocess

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_simulator.json"
HISTORY_JSONL = RESULTS_DIR / "bench_history.jsonl"

#: Derived scalar metrics benches record alongside the raw timings
#: (e.g. ``parallel_speedup_vs_serial``) — merged into BENCH_simulator
#: only when a measuring session actually collected stats, so smoke
#: runs never clobber real numbers.
EXTRA_METRICS: dict = {}


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture(scope="session")
def report():
    """Write one experiment's regenerated table to the results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write


@pytest.fixture(scope="session")
def record_metric():
    """Record a derived metric into ``BENCH_simulator.json``.

    ``record_metric("parallel_speedup_vs_serial", value, workers=4)``
    lands as ``{"value": ..., "workers": 4}`` under that name, next to
    the per-bench timing stats, once the measuring session finishes.
    """

    def record(name: str, value, **extra) -> None:
        EXTRA_METRICS[name] = {"value": value, **extra}

    return record


def pytest_sessionfinish(session, exitstatus):
    """Dump per-bench timing stats as JSON after a measuring run.

    With ``--benchmark-disable`` (the CI smoke mode) benches execute but
    collect no stats; the file is left untouched so a smoke run never
    clobbers real numbers.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    results = {}
    for bench in getattr(bench_session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        mean = stats.mean
        results[bench.name] = {
            "mean_s": mean,
            "stddev_s": stats.stddev,
            "min_s": stats.min,
            "ops_per_s": (1.0 / mean) if mean else None,
            "rounds": stats.rounds,
        }
    if not results:
        return
    results.update(EXTRA_METRICS)
    merged = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text())
        except ValueError:
            merged = {}
    merged.update(results)
    BENCH_JSON.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    entry = {
        "commit": _git_commit(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "benches": results,
    }
    with HISTORY_JSONL.open("a") as history:
        history.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"\n[bench stats for {len(results)} benches merged "
          f"into {BENCH_JSON}; history appended to {HISTORY_JSONL}]")
