"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, asserts the
*shape* the paper reports (who wins, what grows, where limits fall), and
writes the regenerated data to ``benchmarks/results/`` so EXPERIMENTS.md
can quote it.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Write one experiment's regenerated table to the results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write
