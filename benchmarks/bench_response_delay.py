"""E3 (§V-A) — response delays of one-hop management commands.

Paper: "Both the neighborhood management and the single-hop ping command
have a response delay of 500 milliseconds, which is consistent with most
other commands in LiteOS.  This period of time is intentionally longer
than needed to receive the replies from the network, as we use extra
waiting time to allow nodes to add random waiting time before sending
back replies."

Shape to reproduce: every one-hop management command completes in
exactly the 500 ms response window (simulated time), and the raw reply —
without the deliberate window — lands well inside it.
"""

import struct

import pytest

from repro.analysis import render_table
from repro.core.deploy import deploy_liteview
from repro.core.wire import MsgType
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture(scope="module")
def deployment():
    testbed = build_chain(3, spacing=60.0, seed=2,
                          propagation_kwargs=QUIET_PROPAGATION)
    return deploy_liteview(testbed, warm_up=15.0)


COMMANDS = [
    ("get radio state", MsgType.GET_RADIO, b""),
    ("set power", MsgType.SET_POWER, bytes([31])),
    ("neighborhood list", MsgType.NEIGHBOR_LIST, b"\x01"),
    ("blacklist add", MsgType.BLACKLIST_ADD, struct.pack(">H", 2)),
    ("blacklist remove", MsgType.BLACKLIST_REMOVE, struct.pack(">H", 2)),
    ("update beacon freq", MsgType.SET_BEACON, struct.pack(">I", 2000)),
]


def run_all(dep):
    rows = []
    for name, msg, body in COMMANDS:
        windowed = dep.workstation.call(1, msg, body, window=0.5)
        raw = dep.workstation.call(1, msg, body, window=0.5,
                                   wait_full_window=False)
        rows.append((name, windowed.elapsed * 1000, raw.elapsed * 1000))
    return rows


def test_one_hop_command_response_delays(benchmark, deployment, report):
    rows = benchmark.pedantic(run_all, args=(deployment,),
                              rounds=3, iterations=1)

    # -- paper-shape assertions --------------------------------------
    for name, windowed_ms, raw_ms in rows:
        # The user-visible delay is the full 500 ms window ...
        assert windowed_ms == pytest.approx(500.0, abs=5.0), name
        # ... which is "intentionally longer than needed": the actual
        # reply (including the node's random backoff, up to 300 ms, and
        # the reliable exchange) fits comfortably inside it.
        assert raw_ms < 450.0, name

    report("e3_response_delay", render_table(
        ["command", "response_delay_ms", "raw_reply_ms"],
        [[n, round(w, 1), round(r, 1)] for n, w, r in rows],
        title="E3 — one-hop management command response delays",
    ))
