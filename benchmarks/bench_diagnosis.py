"""E7 (abstract) — end-user diagnosis workflows.

The abstract claims the toolkit lets users "identify broken links or
asymmetric links" and "identify traffic hotspots by collecting round-trip
delays of arbitrary pairs of nodes".  This bench injects one broken link,
one asymmetric link, and one congestion hotspot into a testbed, runs the
diagnosis workflows through the full toolkit path, and asserts each fault
is found without false alarms on the healthy control links.
"""

import pytest

from repro.analysis import render_table
from repro.core.deploy import deploy_liteview
from repro.core.diagnosis import (
    LinkClass,
    classify_link,
    find_hotspots,
    survey_links,
)
from repro.workloads import Flow, TrafficGenerator, build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


@pytest.fixture(scope="module")
def faulty_deployment():
    """A 6-node chain with a broken and an asymmetric link injected."""
    testbed = build_chain(6, spacing=60.0, seed=8,
                          propagation_kwargs=QUIET_PROPAGATION)
    # Fault 1: link 3->4 and 4->3 dead (e.g. a failed antenna).
    testbed.propagation.set_link_shadowing_db(3, 4, 80.0)
    testbed.propagation.set_link_shadowing_db(4, 3, 80.0)
    # Fault 2: link 5->6 degraded in one direction only.
    testbed.propagation.set_link_shadowing_db(6, 5, 5.0)
    return deploy_liteview(testbed, warm_up=15.0)


def run_survey(dep):
    pairs = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
    return survey_links(dep, pairs, rounds=8)


def test_broken_and_asymmetric_link_detection(benchmark, faulty_deployment,
                                              report):
    reports = benchmark.pedantic(run_survey, args=(faulty_deployment,),
                                 rounds=3, iterations=1)
    labels = {(r.src, r.dst): classify_link(r) for r in reports}

    # -- diagnosis assertions ------------------------------------------
    assert labels[(3, 4)] == LinkClass.BROKEN
    assert labels[(5, 6)] in (LinkClass.ASYMMETRIC, LinkClass.LOSSY)
    for pair in ((1, 2), (2, 3), (4, 5)):
        assert labels[pair] == LinkClass.HEALTHY, pair

    rows = [
        [f"{r.src}->{r.dst}", f"{r.received}/{r.sent}",
         "-" if r.lqi_forward is None else round(r.lqi_forward, 1),
         "-" if r.lqi_backward is None else round(r.lqi_backward, 1),
         labels[(r.src, r.dst)]]
        for r in reports
    ]
    report("e7_link_diagnosis", render_table(
        ["link", "replies", "lqi_fwd", "lqi_bwd", "diagnosis"], rows,
        title=("E7 — link survey over the toolkit "
               "(injected: broken 3-4, asymmetric 6->5)"),
    ))


def test_hotspot_detection_under_load(benchmark, report):
    """Cross traffic through a shared relay inflates that node's inbound
    per-hop RTT and queue; the traceroute-based detector flags it."""
    import statistics

    from repro.workloads import corridor_chain

    # Dense indoor chain: carrier sense covers adjacent links, so
    # congestion manifests as backoff/queueing delay — the signature the
    # RTT-based detector reads.
    testbed = corridor_chain(5, seed=12)
    dep = deploy_liteview(testbed, warm_up=15.0)

    # The paper's interactive workflow: probe the idle network first to
    # establish the per-hop RTT baseline ...
    from repro.core.diagnosis import probe_path
    quiet = probe_path(dep, 1, 5, rounds=3)
    assert quiet is not None and quiet.hops
    baseline = statistics.fmean(h.rtt_ms for h in quiet.hops)

    # ... then load the middle of the chain with cross traffic ...
    generator = TrafficGenerator(testbed, [
        Flow(src=2, dst=5, interval=0.03, payload_bytes=48),
        Flow(src=4, dst=1, interval=0.03, payload_bytes=48),
    ])
    generator.start()
    testbed.warm_up(3.0)

    # ... and probe again, comparing against the baseline.
    def run():
        return find_hotspots(dep, [(1, 5)], rounds=4,
                             score_threshold=1.5,
                             baseline_rtt_ms=baseline)

    hotspots = benchmark.pedantic(run, rounds=3, iterations=1)
    generator.stop()

    assert hotspots, "congested relays must be flagged"
    flagged = {h.node_id for h in hotspots}
    # The hot region is the chain's interior (the nodes relaying the
    # cross traffic).
    assert flagged & {2, 3, 4}

    report("e7_hotspots", render_table(
        ["node", "mean_hop_rtt_ms", "max_queue", "samples", "score"],
        [[h.node_id, round(h.mean_hop_rtt_ms, 1), h.max_queue,
          h.samples, round(h.score, 2)] for h in hotspots],
        title="E7 — hotspot detection (cross traffic through node 3)",
    ))
