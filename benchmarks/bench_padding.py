"""E5 (§IV-C.3) — link-quality padding capacity.

Paper: "as the probe packet has a payload of 16 bytes, as each hop takes
two bytes in padding, a packet could at most travel 24 hops before the
padding runs out of space.  This is sufficient for most applications."

Shape to reproduce: the 16-byte-probe/24-hop arithmetic, the growth of
the packet along its path (live, over a real multi-hop ping), and the
fact that padding never corrupts the data payload.
"""

import pytest

from repro.analysis import render_table
from repro.core.deploy import deploy_liteview
from repro.net import PAYLOAD_REGION_BYTES, Packet, max_padded_hops
from repro.workloads import build_chain
from repro.workloads.scenarios import QUIET_PROPAGATION


def capacity_table():
    return [
        (payload, max_padded_hops(payload))
        for payload in (0, 8, 16, 24, 32, 48, 62, 64)
    ]


def test_padding_capacity_table(benchmark, report):
    rows = benchmark(capacity_table)

    # -- paper-value assertions --------------------------------------
    as_dict = dict(rows)
    assert as_dict[16] == 24, "the paper's 16-byte probe records 24 hops"
    assert as_dict[64] == 0
    assert as_dict[0] == PAYLOAD_REGION_BYTES // 2

    report("e5_padding_capacity", render_table(
        ["payload_B", "max_padded_hops"], [list(r) for r in rows],
        title="E5 — padding hop budget vs payload size (64 B region)",
    ))


def test_padding_grows_on_air_and_preserves_payload(benchmark):
    """Live check: the padded probe grows 2 B per hop and the payload
    bytes delivered at the destination are untouched."""
    testbed = build_chain(5, spacing=60.0, seed=7,
                          propagation_kwargs=QUIET_PROPAGATION)
    dep = deploy_liteview(testbed, warm_up=15.0)
    tb = dep.testbed

    def run():
        start = len(tb.monitor.packets)
        service = dep.ping_services[1]
        proc = tb.env.process(service.ping(5, rounds=1, length=16,
                                           routing_port=10))
        result = tb.env.run(until=proc)
        sizes = [r.size_bytes for r in tb.monitor.packets[start:]
                 if r.kind in ("ping", "geographic")]
        return result, sizes

    result, sizes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.received == 1
    # 4 hops out + 4 hops back: the frame grows exactly 2 B per
    # traversed hop, with a single discontinuity where the probe turns
    # into the (differently-sized) reply at the destination.
    deltas = [b - a for a, b in zip(sizes, sizes[1:])]
    assert deltas.count(2) >= 5
    assert sum(1 for d in deltas if d != 2) <= 1
    assert max(sizes) - min(sizes) >= 2 * 3
    # The delivered forward path covers every hop: padding recorded all
    # the way without touching the 16 filler bytes (the probe parsed
    # correctly at the destination, or no reply would have come back).
    assert len(result.rounds[0].forward_path) == 4


def test_hop_budget_enforced_beyond_capacity(benchmark):
    """A packet whose padding region fills up is dropped, not corrupted:
    routed over more hops than the budget allows, it never arrives."""

    def run():
        packet = Packet(port=10, origin=1, dest=2, payload=b"p" * 62,
                        padding_enabled=True)
        packet.add_hop_quality(100, -50)  # one slot exists
        from repro.errors import PaddingOverflow
        try:
            packet.add_hop_quality(100, -50)
        except PaddingOverflow:
            return packet
        raise AssertionError("second hop must overflow a 62 B payload")

    packet = benchmark(run)
    assert len(packet.hop_quality) == 1
    assert packet.payload == b"p" * 62
