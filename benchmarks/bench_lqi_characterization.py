"""Supplementary — LQI as a link-quality predictor (§III-B.3's claim).

The paper leans on LQI throughout: "a correlation of around 110
indicates the highest quality while a value of 50 the lowest", and LQI
"could also be affected [by] the presence of radio interference" while
RSSI tracks raw strength.  This bench characterises the reproduction's
observables the way a tool-validation section would:

* live-sampled LQI falls monotonically with distance and tracks the
  delivered-packet ratio through the gray region;
* under interference, LQI drops while RSSI of the received frames does
  not — the discriminating behaviour the paper describes.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kernel import Testbed
from repro.mac.frame import BROADCAST, Frame
from repro.workloads.scenarios import QUIET_PROPAGATION

DISTANCES = [20.0, 50.0, 70.0, 85.0, 92.0, 97.0]
FRAMES = 150


def sample_link(distance, seed=4, jam=False, jam_offset=42.5):
    """Blast frames over one link; return (delivery, mean LQI, mean RSSI)
    of the frames that arrived."""
    tb = Testbed(seed=seed, propagation_kwargs=QUIET_PROPAGATION)
    tx = tb.add_node("tx", (0.0, 0.0))
    rx = tb.add_node("rx", (distance, 0.0))
    arrivals = []
    rx.xcvr.set_receive_handler(arrivals.append)
    jammer = None
    if jam:
        # An interferer near the receiver, far enough from the sender
        # that its frames overlap (hidden terminal).
        jammer = tb.add_node("jam", (distance + jam_offset, 0.0))

    def blast():
        for _ in range(FRAMES):
            yield tb.medium.transmit(
                tx.xcvr, Frame(src=tx.id, dst=BROADCAST, payload=bytes(40))
            )
            yield tb.env.timeout(0.004)

    def jam_loop():
        # Back-to-back frames: near-continuous interference, so every
        # signal frame decodes through it (SIR just above the capture
        # margin) with degraded correlation.
        while True:
            yield tb.medium.transmit(
                jammer.xcvr,
                Frame(src=jammer.id, dst=BROADCAST, payload=bytes(110)),
            )

    tb.env.process(blast())
    if jam:
        from repro.errors import ProcessInterrupt

        def guarded():
            try:
                yield from jam_loop()
            except ProcessInterrupt:
                return

        proc = tb.env.process(guarded())
    tb.env.run(until=tb.env.now + FRAMES * 0.006 + 0.1)
    if jam:
        proc.interrupt()
        # Bounded drain: the kernel's beacon processes never stop, so a
        # horizonless run() would spin forever.
        tb.env.run(until=tb.env.now + 0.05)
    good = [a for a in arrivals
            if a.crc_ok and a.sender == tx.id
            and a.frame.kind == "data"]
    if not good:
        return 0.0, None, None
    return (
        len(good) / FRAMES,
        float(np.mean([a.lqi for a in good])),
        float(np.mean([a.rssi for a in good])),
    )


def test_lqi_tracks_delivery_through_the_gray_region(benchmark, report):
    benchmark.pedantic(sample_link, args=(70.0,), rounds=2, iterations=1)
    rows = []
    series = {}
    for distance in DISTANCES:
        delivery, lqi, rssi = sample_link(distance)
        series[distance] = (delivery, lqi, rssi)
        rows.append([distance, f"{delivery:.2f}",
                     "-" if lqi is None else round(lqi, 1),
                     "-" if rssi is None else round(rssi, 1)])

    # -- shape assertions ----------------------------------------------
    lqis = [series[d][1] for d in DISTANCES if series[d][1] is not None]
    assert all(b <= a + 2.0 for a, b in zip(lqis, lqis[1:])), \
        "LQI must fall (monotone within noise) with distance"
    # Clean short link: LQI saturated near the paper's 110 ceiling.
    assert series[20.0][1] > 105
    assert series[20.0][0] > 0.99
    # Gray region: intermediate LQI *and* intermediate delivery.
    gray = series[92.0]
    assert 0.05 < gray[0] < 0.95
    assert gray[1] < 95

    report("s1_lqi_vs_distance", render_table(
        ["distance_m", "delivery", "mean_lqi", "mean_rssi"], rows,
        title=("S1 — LQI/RSSI/delivery vs distance "
               f"({FRAMES} frames per link)"),
    ))


def test_interference_hits_lqi_not_rssi(benchmark, report):
    """LQI 'could also be affected [by] the presence of radio
    interference. ... RSSI is different from LQI in that it is more
    related to the signal strength.'"""
    def both():
        # 30 m link (strong signal); jammer 55 m from the receiver: its
        # frames land ~6 dB below the signal — above the capture margin,
        # so frames still decode, with visibly degraded correlation.
        return sample_link(30.0), sample_link(30.0, jam=True)

    (clean, jammed) = benchmark.pedantic(both, rounds=3, iterations=1)
    clean_delivery, clean_lqi, clean_rssi = clean
    jam_delivery, jam_lqi, jam_rssi = jammed
    assert jam_delivery <= clean_delivery
    # LQI of the frames that still arrive is visibly degraded ...
    assert jam_lqi < clean_lqi - 3.0
    # ... while their RSSI stays put (same signal strength).
    assert abs(jam_rssi - clean_rssi) < 2.0

    report("s1_lqi_interference", render_table(
        ["condition", "delivery", "mean_lqi", "mean_rssi"],
        [["clean", f"{clean_delivery:.2f}", round(clean_lqi, 1),
          round(clean_rssi, 1)],
         ["interfered", f"{jam_delivery:.2f}", round(jam_lqi, 1),
          round(jam_rssi, 1)]],
        title="S1 — interference degrades LQI but not RSSI (30 m link)",
    ))
