"""Figure 5 — traceroute response delay per hop.

Paper setup: "We measured the response delay with a testbed of eight hops
in diameter.  Figure 5 shows the response delay for receiving the packets
from different hops in one typical experiment."

Shape to reproduce:

* the delay typically *increases* with the hop number;
* some reports arrive almost back-to-back, because the routing layer's
  queueing/backoff can hold packets and release them together.

Runs as a :mod:`repro.campaign` of independent seeded replicates of the
``fig5_traceroute`` scenario cell: "typical" stops being one pinned
cherry seed and becomes a property the replicate population must show —
every complete run correlates delay with hop count, and back-to-back
arrivals appear in a healthy fraction of runs.
"""

import numpy as np

from repro.analysis import aggregate_cells, render_series
from repro.campaign import Campaign, run_campaign

#: Campaign seed (kept from the pre-campaign bench) and replicate count.
SEED = 9
REPEATS = 8

CAMPAIGN = Campaign(name="fig5", scenario="fig5_traceroute", seed=SEED,
                    repeats=REPEATS)


def shape(series):
    """(correlation, last/max ratio, min-gap/mean-gap) of one run."""
    hops = [h for h, _ in series]
    delays = [d for _, d in series]
    corr = float(np.corrcoef(hops, delays)[0, 1])
    arrivals = sorted(delays)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    return corr, delays[-1] / max(delays), min(gaps) / (sum(gaps) / len(gaps))


def test_fig5_traceroute_response_delay(benchmark, report):
    single = Campaign(name="fig5-one", scenario="fig5_traceroute",
                      seed=SEED, repeats=1)
    benchmark.pedantic(
        lambda: run_campaign(single, workers=1), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    result = run_campaign(CAMPAIGN, workers=1)
    assert result.failures == []
    complete = [r for r in result.ok if r.values["complete"]]

    # -- paper-shape assertions --------------------------------------
    # Complete 8-report runs are the norm, not a fluke.
    assert len(complete) >= REPEATS * 3 // 4
    shapes = [shape(r.values["series"]) for r in complete]
    # The delay grows with the hop number in every complete experiment.
    for corr, _, _ in shapes:
        assert corr > 0.5, f"delay must grow with hops (corr={corr:.2f})"
    # In a healthy fraction of runs the hop-8 report is (nearly) the
    # latest arrival overall...
    assert sum(1 for _, last_ratio, _ in shapes if last_ratio >= 0.8) >= 2
    # ...and some adjacent arrivals land almost back-to-back (queued
    # reports released together).
    assert sum(1 for _, _, gap in shapes if gap < 0.25) >= 2

    # Merge the replicates: per-hop mean delay with a 95% Student-t CI.
    rows = [({"hop": h}, {"delay_ms": d})
            for r in complete for h, d in r.values["series"]]
    per_hop = aggregate_cells(rows, metrics=["delay_ms"])
    assert [a.params["hop"] for a in per_hop] == list(range(1, 9))
    assert per_hop[-1].mean > per_hop[0].mean  # growth survives merging

    # The paper plots one typical experiment: the complete run whose
    # delay/hop correlation is strongest stands in for Figure 5.
    typical = max(complete,
                  key=lambda r: shape(r.values["series"])[0])
    series = [(h, round(d, 1)) for h, d in typical.values["series"]]
    mean_lines = "\n".join(
        f"  hop {a.params['hop']}: {a.render()}" for a in per_hop)
    report("fig5_traceroute_delay", render_series(
        f"Figure 5 — traceroute response delay (8-hop chain, "
        f"typical of {len(complete)}/{REPEATS} complete campaign runs)",
        series, x_label="hop", y_label="delay_ms",
    ) + f"\n\nper-hop mean over the campaign:\n{mean_lines}")
