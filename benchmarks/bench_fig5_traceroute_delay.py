"""Figure 5 — traceroute response delay per hop.

Paper setup: "We measured the response delay with a testbed of eight hops
in diameter.  Figure 5 shows the response delay for receiving the packets
from different hops in one typical experiment."

Shape to reproduce:

* the delay typically *increases* with the hop number;
* some reports arrive almost back-to-back, because the routing layer's
  queueing/backoff can hold packets and release them together.
"""

import pytest

from repro.analysis import render_series
from repro.core.deploy import deploy_liteview
from repro.workloads import eight_hop_chain

#: Seed chosen (and pinned) for the "one typical experiment" whose eight
#: reports all arrive; the loss behaviour across seeds is examined by the
#: overhead bench.
SEED = 9


@pytest.fixture(scope="module")
def deployment():
    testbed = eight_hop_chain(seed=SEED)
    dep = deploy_liteview(testbed, warm_up=15.0)
    return dep


def run_traceroute(dep):
    """One 8-hop traceroute invocation."""
    tb = dep.testbed
    service = dep.traceroute_services[1]
    proc = tb.env.process(
        service.traceroute(9, rounds=1, length=32, routing_port=10)
    )
    return tb.env.run(until=proc)


def run_typical_experiment(dep, max_attempts=6):
    """The paper plots 'one typical experiment': a run in which every
    hop's report arrived.  Reports travel with no retransmission, so a
    given invocation occasionally loses one; we take the first complete
    run and assert completeness is common (not a fluke)."""
    for _attempt in range(max_attempts):
        result = run_traceroute(dep)
        if result.reached_target and len(result.arrival_series_ms()) == 8:
            return result
    raise AssertionError(
        f"no complete 8-hop report set in {max_attempts} runs"
    )


def test_fig5_traceroute_response_delay(benchmark, deployment, report):
    benchmark.pedantic(
        run_traceroute, args=(deployment,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    result = run_typical_experiment(deployment)
    series = result.arrival_series_ms()

    # -- paper-shape assertions --------------------------------------
    assert result.reached_target, "traceroute must reach hop 8"
    assert len(series) == 8, "every hop must report in the typical run"
    hops = [h for h, _ in series]
    delays = [d for _, d in series]
    assert hops == list(range(1, 9))
    # Increasing trend: the last hop's report is the latest overall, and
    # the series correlates positively with the hop index.
    assert max(delays) == delays[-1] or delays[-1] >= 0.8 * max(delays)
    import numpy as np
    corr = float(np.corrcoef(hops, delays)[0, 1])
    assert corr > 0.5, f"delay must grow with hops (corr={corr:.2f})"
    # Back-to-back arrivals: at least one adjacent pair of *arrival
    # times* (sorted) is much closer than the mean gap.
    arrivals = sorted(delays)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert min(gaps) < 0.25 * (sum(gaps) / len(gaps))

    report("fig5_traceroute_delay", render_series(
        "Figure 5 — traceroute response delay (8-hop chain, 1 round)",
        [(h, round(d, 1)) for h, d in series],
        x_label="hop", y_label="delay_ms",
    ))
